package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseScript parses a semicolon-separated sequence of statements
// (registration scripts, Section 6.1).
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for {
		for p.acceptPunct(";") {
		}
		if p.peek().Kind == TEOF {
			return out, nil
		}
		p.nextParam = 0 // `?` ordinals restart per statement
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.acceptPunct(";") && p.peek().Kind != TEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
}

type parser struct {
	toks      []Token
	pos       int
	nextParam int // ordinal counter for `?` placeholders
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	where := t.Text
	if t.Kind == TEOF {
		where = "<end>"
	}
	return fmt.Errorf("sql: %s (near %q)", fmt.Sprintf(format, args...), where)
}

// acceptKw consumes the keyword if present (case-insensitive).
func (p *parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.Kind == TIdent && strings.EqualFold(t.Text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.Kind == TPunct && t.Text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TIdent {
		return "", p.errf("expected identifier")
	}
	p.pos++
	return t.Text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKw("CREATE"):
		return p.create()
	case p.acceptKw("DROP"):
		return p.drop()
	case p.acceptKw("ALTER"):
		if !p.acceptKw("INDEX") {
			return nil, p.errf("expected INDEX after ALTER")
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if !p.acceptKw("REBUILD") {
			return nil, p.errf("expected REBUILD after ALTER INDEX %s", name)
		}
		return &AlterIndexRebuild{Name: name}, nil
	case p.acceptKw("INSERT"):
		return p.insert()
	case p.acceptKw("SELECT"):
		return p.selectStmt()
	case p.acceptKw("DELETE"):
		return p.deleteStmt()
	case p.acceptKw("UPDATE"):
		return p.update()
	case p.acceptKw("BEGIN"):
		p.acceptKw("WORK")
		return &Begin{}, nil
	case p.acceptKw("COMMIT"):
		p.acceptKw("WORK")
		return &Commit{}, nil
	case p.acceptKw("ROLLBACK"):
		p.acceptKw("WORK")
		return &Rollback{}, nil
	case p.acceptKw("EXPLAIN"):
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner}, nil
	case p.acceptKw("PREPARE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case *Prepare, *Execute, *Deallocate:
			return nil, fmt.Errorf("sql: cannot PREPARE a %T statement", inner)
		}
		return &Prepare{Name: name, Stmt: inner, Text: Deparse(inner)}, nil
	case p.acceptKw("EXECUTE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st := &Execute{Name: name}
		if p.acceptPunct("(") {
			if !p.acceptPunct(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					st.Args = append(st.Args, a)
					if p.acceptPunct(",") {
						continue
					}
					break
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
		}
		return st, nil
	case p.acceptKw("DEALLOCATE"):
		p.acceptKw("PREPARE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Deallocate{Name: name}, nil
	case p.acceptKw("SET"):
		if p.acceptKw("TRACE") {
			class, err := p.ident()
			if err != nil {
				return nil, err
			}
			p.acceptKw("TO")
			if p.peek().Kind != TNumber {
				return nil, p.errf("expected trace level")
			}
			lvl, err := strconv.Atoi(p.next().Text)
			if err != nil {
				return nil, p.errf("bad trace level")
			}
			return &SetTrace{Class: class, Level: lvl}, nil
		}
		if p.acceptKw("PARALLEL") {
			p.acceptKw("TO")
			if p.peek().Kind != TNumber {
				return nil, p.errf("expected parallel degree")
			}
			deg, err := strconv.Atoi(p.next().Text)
			if err != nil || deg < 0 {
				return nil, p.errf("bad parallel degree")
			}
			return &SetParallel{Degree: deg}, nil
		}
		if p.acceptKw("COMMIT") {
			p.acceptKw("TO")
			mode, err := p.ident()
			if err != nil {
				return nil, p.errf("expected commit mode")
			}
			return &SetCommit{Mode: strings.ToUpper(mode)}, nil
		}
		if p.acceptKw("PLAN_CACHE") {
			p.acceptKw("TO")
			mode, err := p.ident()
			if err != nil {
				return nil, p.errf("expected ON or OFF")
			}
			switch strings.ToUpper(mode) {
			case "ON":
				return &SetPlanCache{On: true}, nil
			case "OFF":
				return &SetPlanCache{On: false}, nil
			}
			return nil, p.errf("expected ON or OFF, got %q", mode)
		}
		if err := p.expectKw("ISOLATION"); err != nil {
			return nil, err
		}
		p.acceptKw("TO") // SET ISOLATION [TO] level
		var words []string
		for p.peek().Kind == TIdent {
			words = append(words, strings.ToUpper(p.next().Text))
		}
		if len(words) == 0 {
			return nil, p.errf("expected isolation level")
		}
		return &SetIsolation{Level: strings.Join(words, " ")}, nil
	case p.acceptKw("SHOW"):
		if p.acceptKw("ALL") {
			return &Show{All: true}, nil
		}
		name, err := p.ident()
		if err != nil {
			return nil, p.errf("expected ALL or a session variable name")
		}
		name = strings.ToLower(name)
		// SHOW TRACE <class> addresses one trace class's level.
		if name == "trace" && p.peek().Kind == TIdent {
			name += "." + strings.ToLower(p.next().Text)
		}
		return &Show{Name: name}, nil
	case p.acceptKw("CHECK"):
		if err := p.expectKw("INDEX"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &CheckIndex{Name: name}, nil
	case p.acceptKw("LOAD"):
		if err := p.expectKw("FROM"); err != nil {
			return nil, err
		}
		if p.peek().Kind != TString {
			return nil, p.errf("expected file name string")
		}
		st := &Load{File: p.next().Text, Delimiter: "|"}
		if p.acceptKw("DELIMITER") {
			if p.peek().Kind != TString {
				return nil, p.errf("expected delimiter string")
			}
			st.Delimiter = p.next().Text
		}
		if err := p.expectKw("INSERT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("INTO"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Table = table
		return st, nil
	}
	return nil, p.errf("unrecognised statement")
}

func (p *parser) create() (Statement, error) {
	switch {
	case p.acceptKw("TABLE"):
		return p.createTable()
	case p.acceptKw("FUNCTION"):
		return p.createFunction()
	case p.acceptKw("SECONDARY"):
		if err := p.expectKw("ACCESS_METHOD"); err != nil {
			return nil, err
		}
		return p.createAccessMethod()
	case p.acceptKw("OPCLASS"):
		return p.createOpClass()
	case p.acceptKw("SBSPACE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &CreateSbspace{Name: name}, nil
	case p.acceptKw("INDEX"):
		return p.createIndex()
	}
	return nil, p.errf("unsupported CREATE")
}

func (p *parser) drop() (Statement, error) {
	switch {
	case p.acceptKw("TABLE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.acceptKw("INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name}, nil
	}
	return nil, p.errf("unsupported DROP")
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &CreateTable{Name: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ty, err := p.typeName()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, ColDef{Name: col, TypeName: ty})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return st, nil
}

// typeName parses a type name, optionally with a (n) length suffix.
func (p *parser) typeName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.acceptPunct("(") {
		if p.peek().Kind != TNumber {
			return "", p.errf("expected length in type")
		}
		p.next()
		if err := p.expectPunct(")"); err != nil {
			return "", err
		}
	}
	return name, nil
}

func (p *parser) createFunction() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CreateFunction{Name: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.acceptPunct(")") {
		for {
			ty, err := p.typeName()
			if err != nil {
				return nil, err
			}
			st.ArgTypes = append(st.ArgTypes, ty)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("RETURNING"); err != nil {
		return nil, err
	}
	ret, err := p.typeName()
	if err != nil {
		return nil, err
	}
	st.Returns = ret
	if err := p.expectKw("EXTERNAL"); err != nil {
		return nil, err
	}
	if err := p.expectKw("NAME"); err != nil {
		return nil, err
	}
	if p.peek().Kind != TString {
		return nil, p.errf("expected external name string")
	}
	st.External = p.next().Text
	if err := p.expectKw("LANGUAGE"); err != nil {
		return nil, err
	}
	lang, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Language = strings.ToLower(lang)
	return st, nil
}

func (p *parser) createAccessMethod() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CreateAccessMethod{Name: name, Slots: make(map[string]string)}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		slot, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		var val string
		switch t := p.peek(); t.Kind {
		case TIdent, TString:
			val = p.next().Text
		default:
			return nil, p.errf("expected slot value")
		}
		st.Slots[strings.ToLower(slot)] = val
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) createOpClass() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("FOR"); err != nil {
		return nil, err
	}
	amName, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CreateOpClass{Name: name, AmName: amName}
	if err := p.expectKw("STRATEGIES"); err != nil {
		return nil, err
	}
	list, err := p.identList()
	if err != nil {
		return nil, err
	}
	st.Strategies = list
	if p.acceptKw("SUPPORT") {
		list, err := p.identList()
		if err != nil {
			return nil, err
		}
		st.Support = list
	}
	return st, nil
}

func (p *parser) identList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) createIndex() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CreateIndex{Name: name, Table: table, Params: make(map[string]string)}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ic := IndexCol{Column: col}
		if p.peek().Kind == TIdent && !strings.EqualFold(p.peek().Text, "USING") {
			oc, err := p.ident()
			if err != nil {
				return nil, err
			}
			ic.OpClass = oc
		}
		st.Columns = append(st.Columns, ic)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.acceptKw("USING") {
		amName, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.AmName = amName
		// Optional (param='value', ...) list.
		if p.acceptPunct("(") {
			for {
				k, err := p.ident()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("="); err != nil {
					return nil, err
				}
				t := p.peek()
				if t.Kind != TString && t.Kind != TIdent && t.Kind != TNumber {
					return nil, p.errf("expected parameter value")
				}
				p.next()
				st.Params[strings.ToLower(k)] = t.Text
				if p.acceptPunct(",") {
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
	}
	if p.acceptKw("IN") {
		space, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Space = space
	}
	return st, nil
}

func (p *parser) insert() (Statement, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Insert{Table: table}
	if p.acceptPunct("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) selectStmt() (Statement, error) {
	st := &Select{}
	for {
		if p.acceptPunct("*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			agg := strings.ToLower(col)
			isAgg := agg == "count" || agg == "min" || agg == "max"
			// COUNT/MIN/MAX are aggregates only when a call follows; a bare
			// ident of the same spelling stays a column reference.
			if isAgg && p.acceptPunct("(") {
				if agg == "count" && p.acceptPunct("*") {
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					st.Items = append(st.Items, SelectItem{CountStar: true})
				} else {
					arg, err := p.ident()
					if err != nil {
						return nil, err
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					st.Items = append(st.Items, SelectItem{Agg: agg, Column: arg})
				}
			} else {
				st.Items = append(st.Items, SelectItem{Column: col})
			}
		}
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Delete{Table: table}
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) update() (Statement, error) {
	// UPDATE STATISTICS FOR INDEX name | UPDATE STATISTICS [FOR] [TABLE] name
	if p.acceptKw("STATISTICS") {
		if p.acceptKw("FOR") && p.acceptKw("INDEX") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &UpdateStatistics{Index: name}, nil
		}
		p.acceptKw("TABLE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &UpdateStatistics{Table: name}, nil
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Update{Table: table}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Column: col, Value: v})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

// expressions (precedence: OR < AND < NOT < comparison < primary) -----------

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TPunct {
		switch t.Text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			p.pos++
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			op := t.Text
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TNumber:
		p.pos++
		return &Literal{Text: t.Text, IsFloat: strings.Contains(t.Text, ".")}, nil
	case TString:
		p.pos++
		return &Literal{Text: t.Text, IsString: true}, nil
	case TPunct:
		if t.Text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "?" {
			p.pos++
			p.nextParam++
			return &Param{Ord: p.nextParam}, nil
		}
		if strings.HasPrefix(t.Text, "$") {
			p.pos++
			ord, err := strconv.Atoi(t.Text[1:])
			if err != nil || ord < 1 {
				return nil, p.errf("bad parameter ordinal %q", t.Text)
			}
			if ord > p.nextParam {
				p.nextParam = ord
			}
			return &Param{Ord: ord}, nil
		}
		if t.Text == "-" { // negative number literal
			p.pos++
			n := p.peek()
			if n.Kind != TNumber {
				return nil, p.errf("expected number after '-'")
			}
			p.pos++
			return &Literal{Text: "-" + n.Text, IsFloat: strings.Contains(n.Text, ".")}, nil
		}
	case TIdent:
		if strings.EqualFold(t.Text, "NULL") {
			p.pos++
			return &Null{}, nil
		}
		if strings.EqualFold(t.Text, "TRUE") || strings.EqualFold(t.Text, "FALSE") {
			p.pos++
			return &Literal{Text: strings.ToLower(t.Text)}, nil
		}
		p.pos++
		if p.acceptPunct("(") {
			fc := &FuncCall{Name: t.Text}
			if !p.acceptPunct(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if p.acceptPunct(",") {
						continue
					}
					break
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		return &ColumnRef{Name: t.Text}, nil
	}
	return nil, p.errf("expected expression")
}
