package sql

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColDef is one column definition in CREATE TABLE.
type ColDef struct {
	Name     string
	TypeName string
}

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name string
	Cols []ColDef
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// CreateFunction is CREATE FUNCTION name(args) RETURNING type
// EXTERNAL NAME 'lib(symbol)' LANGUAGE c (Section 4, Step 2).
type CreateFunction struct {
	Name     string
	ArgTypes []string
	Returns  string
	External string
	Language string
}

// CreateAccessMethod is CREATE SECONDARY ACCESS_METHOD name (slot = value,
// ...) (Section 4, Step 3).
type CreateAccessMethod struct {
	Name  string
	Slots map[string]string
}

// CreateOpClass is CREATE OPCLASS name FOR am STRATEGIES(...) SUPPORT(...)
// (Section 4, Step 4).
type CreateOpClass struct {
	Name       string
	AmName     string
	Strategies []string
	Support    []string
}

// CreateSbspace is CREATE SBSPACE name (the onspaces analogue, Step 5).
type CreateSbspace struct{ Name string }

// IndexCol is one indexed column with its operator class.
type IndexCol struct {
	Column  string
	OpClass string // empty = access method default
}

// CreateIndex is CREATE INDEX name ON table(col opclass, ...) USING am
// [IN space] (Section 4, Step 6).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []IndexCol
	AmName  string // empty = built-in B-tree-ish (unsupported here)
	Space   string
	Params  map[string]string
}

// DropIndex is DROP INDEX name.
type DropIndex struct{ Name string }

// AlterIndexRebuild is ALTER INDEX name REBUILD: rebuild the index storage
// online, reusing the two-phase build machinery.
type AlterIndexRebuild struct{ Name string }

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// SelectItem is one projection item: `*`, a bare column, `COUNT(*)`, or an
// aggregate over one column (Agg is "count", "min", or "max" with Column the
// argument; empty for plain projections).
type SelectItem struct {
	Star      bool
	CountStar bool
	Column    string
	Agg       string
}

// Select is SELECT items FROM table [WHERE expr].
type Select struct {
	Items []SelectItem
	Table string
	Where Expr
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

// SetClause is one SET col = expr.
type SetClause struct {
	Column string
	Value  Expr
}

// Update is UPDATE table SET ... [WHERE expr].
type Update struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// Begin is BEGIN [WORK].
type Begin struct{}

// Commit is COMMIT [WORK].
type Commit struct{}

// Rollback is ROLLBACK [WORK].
type Rollback struct{}

// SetIsolation is SET ISOLATION TO level.
type SetIsolation struct{ Level string }

// SetTrace is SET TRACE class [TO] level — the mi trace machinery's SQL
// switch (Section 6.4: tracing is enabled selectively by class and level).
type SetTrace struct {
	Class string
	Level int
}

// SetParallel is SET PARALLEL [TO] n: the session's intra-query parallelism
// knob. 0 disables parallel scans; n > 1 lets the server offer up to n scan
// workers (capped by GOMAXPROCS) through the am_parallelscan slot.
type SetParallel struct{ Degree int }

// SetCommit is SET COMMIT [TO] {SYNC|GROUP|ASYNC}: the session's commit
// durability mode. SYNC forces a private log fsync per commit, GROUP
// (default) coalesces concurrent commits into one fsync, ASYNC returns at
// append time with bounded loss.
type SetCommit struct{ Mode string }

// SetPlanCache is SET PLAN_CACHE {ON|OFF}: the session's shared-plan-cache
// switch. OFF bypasses the engine-wide plan cache and forces EXECUTE to
// replan on every invocation, so planning cost can be A/B measured.
type SetPlanCache struct{ On bool }

// Prepare is PREPARE name AS <stmt>: parse once, register the statement
// under name in the session, and plan it lazily at first EXECUTE. Text
// carries the statement's source for diagnostics and cache keying.
type Prepare struct {
	Name string
	Stmt Statement
	Text string
}

// Execute is EXECUTE name [(args...)]: bind the argument expressions to the
// prepared statement's parameter slots and run its cached plan.
type Execute struct {
	Name string
	Args []Expr
}

// Deallocate is DEALLOCATE [PREPARE] name: drop a prepared statement.
type Deallocate struct{ Name string }

// Show is SHOW ALL | SHOW <var> [<class>]: read back the session's SET
// state (SessionVars) as rows — SHOW ISOLATION, SHOW COMMIT, SHOW PARALLEL,
// SHOW TRACE <class>. Remote clients have no Session object to poke at, so
// this is how per-connection state stays inspectable over the wire.
type Show struct {
	All  bool
	Name string // lower-cased variable name ("isolation", "trace.grt", ...)
}

// Explain is EXPLAIN stmt: plan the inner statement without executing it.
type Explain struct{ Stmt Statement }

// CheckIndex is CHECK INDEX name (drives am_check).
type CheckIndex struct{ Name string }

// UpdateStatistics is UPDATE STATISTICS [FOR] [TABLE] name (collect row
// counts and per-index histograms into SYSSTATS) or UPDATE STATISTICS FOR
// INDEX name (drive a single index's am_stats). Exactly one of Table/Index
// is set.
type UpdateStatistics struct {
	Index string
	Table string
}

// Load is LOAD FROM 'file' [DELIMITER 'c'] INSERT INTO table — the Informix
// bulk-load command; values of opaque types go through the text-file import
// support function (Section 6.3, item 3).
type Load struct {
	File      string
	Delimiter string
	Table     string
}

func (*CreateTable) stmt()        {}
func (*DropTable) stmt()          {}
func (*CreateFunction) stmt()     {}
func (*CreateAccessMethod) stmt() {}
func (*CreateOpClass) stmt()      {}
func (*CreateSbspace) stmt()      {}
func (*CreateIndex) stmt()        {}
func (*DropIndex) stmt()          {}
func (*AlterIndexRebuild) stmt()  {}
func (*Insert) stmt()             {}
func (*Select) stmt()             {}
func (*Delete) stmt()             {}
func (*Update) stmt()             {}
func (*Begin) stmt()              {}
func (*Commit) stmt()             {}
func (*Rollback) stmt()           {}
func (*SetIsolation) stmt()       {}
func (*SetTrace) stmt()           {}
func (*SetParallel) stmt()        {}
func (*SetCommit) stmt()          {}
func (*SetPlanCache) stmt()       {}
func (*Prepare) stmt()            {}
func (*Execute) stmt()            {}
func (*Deallocate) stmt()         {}
func (*Show) stmt()               {}
func (*Explain) stmt()            {}
func (*CheckIndex) stmt()         {}
func (*UpdateStatistics) stmt()   {}
func (*Load) stmt()               {}

// Expr is a scalar or boolean expression.
type Expr interface{ expr() }

// Literal is a numeric or string literal.
type Literal struct {
	Text     string
	IsString bool
	IsFloat  bool
}

// Null is the NULL literal.
type Null struct{}

// ColumnRef names a column.
type ColumnRef struct{ Name string }

// FuncCall is f(args) — in WHERE clauses typically a strategy function.
type FuncCall struct {
	Name string
	Args []Expr
}

// Binary is a binary operation: comparisons, AND, OR.
type Binary struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	L, R Expr
}

// Not is NOT x.
type Not struct{ X Expr }

// Param is a parameter placeholder: `?` (ordinal assigned left to right) or
// `$n` (explicit 1-based ordinal). Bound to a datum at EXECUTE/Bind time.
type Param struct{ Ord int }

func (*Literal) expr()   {}
func (*Null) expr()      {}
func (*ColumnRef) expr() {}
func (*FuncCall) expr()  {}
func (*Binary) expr()    {}
func (*Not) expr()       {}
func (*Param) expr()     {}
