package sql

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary bytes at the lexer and parser (placeholders
// included in the seed corpus) and checks two properties: no panic, and
// deparse stability — whatever parses must re-parse from its deparsed form
// to an identical deparse. That second property is load-bearing: the shared
// plan cache keys on deparse normal form, so an unstable deparse would
// silently split or alias cache entries.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`SELECT Name FROM Employees WHERE Department = $1`,
		`SELECT a FROM t WHERE f(x, ?) AND y = ?`,
		`PREPARE byemp AS SELECT Name FROM Employees WHERE Overlaps(Time_Extent, $1)`,
		`EXECUTE byemp ('Sales', 7)`,
		`DEALLOCATE PREPARE byemp`,
		`SET PLAN_CACHE OFF`,
		`INSERT INTO t VALUES ($1, $2, NULL)`,
		`UPDATE t SET a = $1 WHERE b = $2`,
		`DELETE FROM t WHERE ContainedIn(x, $9)`,
		`EXPLAIN EXECUTE byemp (1)`,
		`SELECT x FROM t WHERE NOT (a = $1 OR b = '?''$2')`,
		`CREATE INDEX ix ON t(x ops) USING am (k='v') IN spc`,
		`SELECT COUNT(*) FROM t WHERE Overlaps(x, $1)`,
		`SELECT COUNT(a) FROM t`,
		`SELECT MIN(x) FROM t WHERE ContainedIn(x, '1/97, UC, 1/97, NOW')`,
		`SELECT MAX(x) FROM t WHERE f(x, ?) AND g(y)`,
		`SELECT Name, COUNT(*) FROM t`, // rejected downstream, must still parse or error cleanly
		`UPDATE STATISTICS FOR INDEX ix`,
		`UPDATE STATISTICS FOR TABLE t`,
		`UPDATE STATISTICS t`,
		`UPDATE STATISTICS FOR t`,
		`EXPLAIN SELECT COUNT(*) FROM t WHERE Overlaps(x, $1)`,
		`$1 $$ ?? SELECT $`,
		"SELECT -- comment\n1",
		`'unterminated`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		d1 := Deparse(st)
		if strings.Contains(d1, "undeparsable") {
			return // statement type without a deparse form — nothing to check
		}
		st2, err := Parse(d1)
		if err != nil {
			t.Fatalf("deparse of %q does not re-parse: %q: %v", src, d1, err)
		}
		if d2 := Deparse(st2); d2 != d1 {
			t.Fatalf("deparse unstable for %q: %q vs %q", src, d1, d2)
		}
		if NumParams(st) != NumParams(st2) {
			t.Fatalf("param count drifts through deparse of %q", src)
		}
	})
}
