package temporal

import (
	"testing"

	"repro/internal/chronon"
)

var (
	ct97Sep = chronon.MustParse("9/97") // the paper's running current time
)

func ext(tb, te, vb, ve string) Extent {
	return Extent{
		TTBegin: chronon.MustParse(tb), TTEnd: chronon.MustParse(te),
		VTBegin: chronon.MustParse(vb), VTEnd: chronon.MustParse(ve),
	}
}

// TestFigure2Cases checks the six combinations of Figure 2 classify to the
// correct cases, using the EmpDep tuples of Table 1.
func TestFigure2Cases(t *testing.T) {
	cases := []struct {
		name string
		e    Extent
		want Case
	}{
		{"John (1)", ext("4/97", "UC", "3/97", "5/97"), Case1},
		{"Tom (2)", ext("3/97", "7/97", "6/97", "8/97"), Case2},
		{"Jane (3)", ext("5/97", "UC", "5/97", "NOW"), Case3},
		{"Julie (4)", ext("3/97", "7/97", "3/97", "NOW"), Case4},
		{"Julie (5)", ext("8/97", "UC", "3/97", "7/97"), Case1},
		{"Michelle (6)", ext("5/97", "UC", "3/97", "NOW"), Case5},
		{"static high step", ext("5/97", "8/97", "3/97", "NOW"), Case6},
	}
	for _, c := range cases {
		if got := c.e.Case(); got != c.want {
			t.Errorf("%s: case %v, want %v", c.name, got, c.want)
		}
		if !c.e.Valid() {
			t.Errorf("%s: must be valid", c.name)
		}
	}
}

func TestInvalidExtents(t *testing.T) {
	bad := []Extent{
		// VT end would precede VT begin when resolved (tt1 < vt1 with NOW).
		ext("3/97", "UC", "6/97", "NOW"),
		// Reversed ground intervals.
		ext("7/97", "3/97", "1/97", "2/97"),
		ext("3/97", "7/97", "5/97", "4/97"),
		// Variables in begin positions or wrong variables in end positions.
		{TTBegin: chronon.UC, TTEnd: chronon.UC, VTBegin: 0, VTEnd: 1},
		{TTBegin: 0, TTEnd: chronon.NOW, VTBegin: 0, VTEnd: 1},
		{TTBegin: 0, TTEnd: chronon.UC, VTBegin: chronon.NOW, VTEnd: chronon.NOW},
		{TTBegin: 0, TTEnd: chronon.UC, VTBegin: 0, VTEnd: chronon.UC},
	}
	for _, e := range bad {
		if e.Case() != CaseInvalid {
			t.Errorf("%v: classified %v, want invalid", e, e.Case())
		}
	}
}

func TestValidateInsert(t *testing.T) {
	ct := ct97Sep
	good := []Extent{
		{TTBegin: ct, TTEnd: chronon.UC, VTBegin: ct - 30, VTEnd: chronon.NOW},
		{TTBegin: ct, TTEnd: chronon.UC, VTBegin: ct, VTEnd: chronon.NOW},
		// Recording future information requires a ground VT end (Section 2).
		{TTBegin: ct, TTEnd: chronon.UC, VTBegin: ct + 10, VTEnd: ct + 50},
	}
	for _, e := range good {
		if err := e.ValidateInsert(ct); err != nil {
			t.Errorf("%v: unexpected insert error: %v", e, err)
		}
	}
	bad := []Extent{
		{TTBegin: ct - 1, TTEnd: chronon.UC, VTBegin: ct, VTEnd: chronon.NOW},      // TTBegin != ct
		{TTBegin: ct, TTEnd: ct + 5, VTBegin: ct, VTEnd: chronon.NOW},              // TTEnd != UC
		{TTBegin: ct, TTEnd: chronon.UC, VTBegin: ct + 1, VTEnd: chronon.NOW},      // future VTBegin with NOW
		{TTBegin: ct, TTEnd: chronon.UC, VTBegin: ct + 9, VTEnd: ct + 2},           // reversed VT
		{TTBegin: ct, TTEnd: chronon.UC, VTBegin: ct, VTEnd: chronon.UC},           // UC as VT end
		{TTBegin: ct, TTEnd: chronon.UC, VTBegin: chronon.NOW, VTEnd: chronon.NOW}, // variable begin
	}
	for _, e := range bad {
		if err := e.ValidateInsert(ct); err == nil {
			t.Errorf("%v: insert accepted, want error", e)
		}
	}
}

func TestLogicalDeletion(t *testing.T) {
	ct := ct97Sep
	e := Extent{TTBegin: ct - 60, TTEnd: chronon.UC, VTBegin: ct - 60, VTEnd: chronon.NOW}
	d, err := e.Deleted(ct)
	if err != nil {
		t.Fatal(err)
	}
	if d.TTEnd != ct-1 {
		t.Fatalf("deleted TTEnd = %v, want ct-1 = %v", d.TTEnd, ct-1)
	}
	if !d.Valid() || d.Case() != Case4 {
		t.Fatalf("deleted growing stair must be a static stair (case 4), got %v", d.Case())
	}
	if _, err := d.Deleted(ct); err == nil {
		t.Fatal("deleting a non-current extent must fail")
	}
	// Same-chronon insert+delete leaves a single-chronon TT interval.
	f := Extent{TTBegin: ct, TTEnd: chronon.UC, VTBegin: ct, VTEnd: chronon.NOW}
	df, err := f.Deleted(ct)
	if err != nil {
		t.Fatal(err)
	}
	if df.TTEnd != ct {
		t.Fatalf("same-chronon delete TTEnd = %v, want %v", df.TTEnd, ct)
	}
}

func TestExtentStringParseRoundTrip(t *testing.T) {
	for _, e := range []Extent{
		ext("4/97", "UC", "3/97", "5/97"),
		ext("5/97", "UC", "5/97", "NOW"),
		ext("3/97", "7/97", "3/97", "NOW"),
	} {
		got, err := ParseExtent(e.String())
		if err != nil {
			t.Fatalf("ParseExtent(%q): %v", e.String(), err)
		}
		if got != e {
			t.Errorf("round trip: %v -> %v", e, got)
		}
	}
	if _, err := ParseExtent("1/97, 2/97, 3/97"); err == nil {
		t.Error("three timestamps must not parse")
	}
	if _, err := ParseExtent("x, 2/97, 3/97, 4/97"); err == nil {
		t.Error("garbage timestamp must not parse")
	}
	// The paper's literal form.
	e := MustParseExtent("12/10/95, UC, 12/10/95, NOW")
	if e.TTBegin != chronon.FromDate(1995, 12, 10) || e.TTEnd != chronon.UC ||
		e.VTEnd != chronon.NOW {
		t.Errorf("paper literal parsed to %v", e)
	}
}

func TestValidAt(t *testing.T) {
	ct := ct97Sep
	good := []Extent{
		ext("4/97", "UC", "3/97", "5/97"),
		ext("3/97", "7/97", "6/97", "8/97"),
		ext("5/97", "UC", "5/97", "NOW"),
		// Future VALID time is fine (recording beliefs about the future).
		{TTBegin: ct, TTEnd: chronon.UC, VTBegin: ct + 100, VTEnd: ct + 200},
	}
	for _, e := range good {
		if !e.ValidAt(ct) {
			t.Errorf("%v must be valid at %v", e, ct)
		}
	}
	bad := []Extent{
		// Transaction time cannot begin or end beyond the current time.
		{TTBegin: ct + 1, TTEnd: chronon.UC, VTBegin: ct, VTEnd: chronon.NOW},
		{TTBegin: ct - 10, TTEnd: ct + 10, VTBegin: ct - 10, VTEnd: ct},
		// Structurally invalid stays invalid.
		ext("7/97", "3/97", "1/97", "2/97"),
	}
	for _, e := range bad {
		if e.ValidAt(ct) {
			t.Errorf("%v must be invalid at %v", e, ct)
		}
	}
}

func TestNowRelative(t *testing.T) {
	if !ext("4/97", "UC", "3/97", "5/97").NowRelative() {
		t.Error("UC extent is now-relative")
	}
	if !ext("3/97", "7/97", "3/97", "NOW").NowRelative() {
		t.Error("NOW extent is now-relative")
	}
	if ext("3/97", "7/97", "6/97", "8/97").NowRelative() {
		t.Error("fully ground extent is not now-relative")
	}
}

// TestBitemporalRegionsFigure1 verifies the geometry of the regions in
// Figure 1 against the narrative of Section 2.
func TestBitemporalRegionsFigure1(t *testing.T) {
	ct := ct97Sep

	// Case 1 (John): rectangle growing in transaction time. At ct the TT
	// interval spans 4/97..ct, VT fixed 3/97..5/97.
	john := ext("4/97", "UC", "3/97", "5/97").Region()
	s := john.Resolve(ct)
	if s.Stair {
		t.Fatal("case 1 resolves to a rectangle")
	}
	if s.TTEnd != int64(ct) || s.VTEnd != int64(chronon.MustParse("5/97")) {
		t.Fatalf("case 1 resolved to %v", s)
	}
	// It grows: a later current time widens the TT interval only.
	s2 := john.Resolve(ct + 30)
	if s2.TTEnd != int64(ct)+30 || s2.VTEnd != s.VTEnd {
		t.Fatalf("case 1 growth wrong: %v", s2)
	}

	// Case 3 (Jane): stair growing in both dimensions.
	jane := ext("5/97", "UC", "5/97", "NOW").Region()
	js := jane.Resolve(ct)
	if !js.Stair {
		t.Fatal("case 3 resolves to a stair")
	}
	if js.TTEnd != int64(ct) || js.VTEnd != int64(ct) {
		t.Fatalf("case 3 resolved to %v", js)
	}
	if !js.ContainsPoint(int64(ct), int64(ct)) || js.ContainsPoint(int64(ct)-5, int64(ct)) {
		t.Fatal("case 3 stair boundary")
	}

	// Case 5 (Michelle): high first step — at its first TT chronon the
	// column spans VT 3/97..5/97.
	michelle := ext("5/97", "UC", "3/97", "NOW").Region()
	ms := michelle.Resolve(ct)
	tt0 := int64(chronon.MustParse("5/97"))
	if !ms.ContainsPoint(tt0, tt0) || !ms.ContainsPoint(tt0, int64(chronon.MustParse("3/97"))) {
		t.Fatal("case 5 high first step missing")
	}
	if ms.ContainsPoint(tt0, tt0+1) {
		t.Fatal("case 5 must not exceed v = t")
	}

	// Cases 2/4/6 are static: region identical at ct and ct+100.
	for _, e := range []Extent{
		ext("3/97", "7/97", "6/97", "8/97"),
		ext("3/97", "7/97", "3/97", "NOW"),
		ext("5/97", "8/97", "3/97", "NOW"),
	} {
		r := e.Region()
		if !r.Resolve(ct).EqualShape(r.Resolve(ct + 100)) {
			t.Errorf("%v: static region changed over time", e)
		}
	}
}

// TestRegionGrowthMonotone: a region at a later current time contains the
// region at an earlier one (regions only grow; Section 2).
func TestRegionGrowthMonotone(t *testing.T) {
	ct := ct97Sep
	regions := []Region{
		ext("4/97", "UC", "3/97", "5/97").Region(),
		ext("5/97", "UC", "5/97", "NOW").Region(),
		ext("5/97", "UC", "3/97", "NOW").Region(),
		ext("3/97", "7/97", "3/97", "NOW").Region(),
		ext("3/97", "7/97", "6/97", "8/97").Region(),
	}
	for _, r := range regions {
		for d := int64(1); d <= 120; d *= 4 {
			early, late := r.Resolve(ct), r.Resolve(ct+chronon.Instant(d))
			if !late.ContainsShape(early) {
				t.Errorf("%v: region at ct+%d does not contain region at ct", r, d)
			}
		}
	}
}
