package temporal

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
)

// randomValidExtent draws one of the six legal extent cases with ground
// coordinates in [0, 100], valid as of current time ct.
func randomValidExtent(rng *rand.Rand, ct chronon.Instant) Extent {
	c := int64(ct)
	vtb := rng.Int63n(c + 1) // <= ct
	ttb := vtb + rng.Int63n(c-vtb+1)
	switch rng.Intn(6) {
	case 0: // case 1: growing rect
		vte := vtb + rng.Int63n(60)
		return Extent{chronon.Instant(ttb), chronon.UC, chronon.Instant(vtb), chronon.Instant(vte)}
	case 1: // case 2: static rect
		tte := ttb + rng.Int63n(c-ttb+1)
		vte := vtb + rng.Int63n(60)
		return Extent{chronon.Instant(ttb), chronon.Instant(tte), chronon.Instant(vtb), chronon.Instant(vte)}
	case 2: // case 3: growing stair, tt1 = vt1
		return Extent{chronon.Instant(vtb), chronon.UC, chronon.Instant(vtb), chronon.NOW}
	case 3: // case 4: static stair, tt1 = vt1
		tte := vtb + rng.Int63n(c-vtb+1)
		return Extent{chronon.Instant(vtb), chronon.Instant(tte), chronon.Instant(vtb), chronon.NOW}
	case 4: // case 5: growing stair, high first step
		return Extent{chronon.Instant(ttb), chronon.UC, chronon.Instant(vtb), chronon.NOW}
	default: // case 6: static stair, high first step
		tte := ttb + rng.Int63n(c-ttb+1)
		return Extent{chronon.Instant(ttb), chronon.Instant(tte), chronon.Instant(vtb), chronon.NOW}
	}
}

func TestRandomExtentsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ct := chronon.Instant(100)
	for i := 0; i < 500; i++ {
		e := randomValidExtent(rng, ct)
		if !e.Valid() {
			t.Fatalf("generator produced invalid extent %v", e)
		}
	}
}

// TestBoundContainsChildren: the minimum bounding region must contain every
// child at the construction time and at later times (after Adjust).
func TestBoundContainsChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ct := chronon.Instant(100)
	pol := BoundPolicy{TimeParam: 20, AllowHidden: true}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		regions := make([]Region, n)
		for i := range regions {
			regions[i] = randomValidExtent(rng, ct).Region()
		}
		b := Bound(regions, ct, pol)
		for _, at := range []chronon.Instant{ct, ct + 1, ct + 19, ct + 20, ct + 21, ct + 100, ct + 1000} {
			bs := b.Resolve(at)
			for _, r := range regions {
				if !bs.ContainsShape(r.Resolve(at)) {
					t.Fatalf("trial %d at ct+%d: bound %v does not contain child %v\nbound shape %v child shape %v",
						trial, at-ct, b, r, bs, r.Resolve(at))
				}
			}
		}
		for _, r := range regions {
			if !b.CoversRegion(r, ct) {
				t.Fatalf("trial %d: CoversRegion(%v, %v) = false", trial, b, r)
			}
		}
	}
}

// TestBoundStairWhenPossible: Figure 4(b) — if no region extends above the
// line v = t, the bound should be a stair-shape (it has the least area).
func TestBoundStairWhenPossible(t *testing.T) {
	ct := chronon.Instant(100)
	regions := []Region{
		ext("1/70", "UC", "1/70", "NOW").Region(), // growing stair (uses day offsets below instead)
	}
	// Rebuild with raw instants for precision.
	regions = []Region{
		{TTBegin: 10, TTEnd: chronon.UC, VTBegin: 10, VTEnd: chronon.NOW}, // growing stair
		{TTBegin: 30, TTEnd: 60, VTBegin: 5, VTEnd: 20, Rect: true},       // rect under v=t (20 <= 30)
		{TTBegin: 40, TTEnd: chronon.UC, VTBegin: 20, VTEnd: chronon.NOW}, // growing stair, high step
	}
	b := Bound(regions, ct, DefaultBoundPolicy)
	if !b.StairFlag() {
		t.Fatalf("bound should be a stair, got %v", b)
	}
	if b.TTBegin != 10 || b.VTBegin != 5 || b.TTEnd != chronon.UC {
		t.Fatalf("stair bound coords: %v", b)
	}
}

// TestBoundGrowingRectWhenStairImpossible: Figure 4(a) — a rectangle that
// extends above v = t alongside a growing stair forces a rectangle bound
// growing in both dimensions (unless hiding applies).
func TestBoundGrowingRectWhenStairImpossible(t *testing.T) {
	ct := chronon.Instant(100)
	pol := BoundPolicy{TimeParam: 20, AllowHidden: false}
	regions := []Region{
		{TTBegin: 10, TTEnd: chronon.UC, VTBegin: 10, VTEnd: chronon.NOW}, // growing stair
		{TTBegin: 50, TTEnd: 80, VTBegin: 70, VTEnd: 90, Rect: true},      // above v=t
	}
	b := Bound(regions, ct, pol)
	if !b.Rect || b.VTEnd != chronon.NOW || b.TTEnd != chronon.UC {
		t.Fatalf("expected growing-both rectangle bound, got %v", b)
	}
	if b.Hidden {
		t.Fatal("hidden disallowed by policy")
	}
}

// TestBoundHidden: Figure 4(c) — a small growing stair next to a rectangle
// with a distant fixed valid-time end is hidden inside a fixed rectangle.
func TestBoundHidden(t *testing.T) {
	ct := chronon.Instant(100)
	pol := BoundPolicy{TimeParam: 20, AllowHidden: true}
	regions := []Region{
		{TTBegin: 90, TTEnd: chronon.UC, VTBegin: 90, VTEnd: chronon.NOW}, // small growing stair
		{TTBegin: 10, TTEnd: 95, VTBegin: 5, VTEnd: 500, Rect: true},      // tall fixed rect
	}
	b := Bound(regions, ct, pol)
	if !b.Hidden {
		t.Fatalf("expected a hidden bound, got %v", b)
	}
	if b.VTEnd != 500 || !b.Rect {
		t.Fatalf("hidden bound should reuse the fixed top: %v", b)
	}
	// Before outgrowth the bound reads as the fixed rectangle.
	if s := b.Resolve(ct); s.VTEnd != 500 {
		t.Fatalf("hidden bound at ct: %v", s)
	}
	// After the stair outgrows the fixed top, Adjust turns the bound into a
	// rectangle growing in both dimensions — and it still contains the stair.
	late := chronon.Instant(600)
	adj := b.Adjust(late)
	if adj.VTEnd != chronon.NOW || !adj.Rect {
		t.Fatalf("adjusted hidden bound: %v", adj)
	}
	if !b.Resolve(late).ContainsShape(regions[0].Resolve(late)) {
		t.Fatal("adjusted hidden bound must contain the grown stair")
	}
}

// TestAdjustNoopCases: Adjust only fires for hidden entries with an outgrown
// fixed valid-time end.
func TestAdjustNoopCases(t *testing.T) {
	r := Region{TTBegin: 1, TTEnd: chronon.UC, VTBegin: 1, VTEnd: 50, Rect: true}
	if r.Adjust(100) != r {
		t.Fatal("non-hidden region must not adjust")
	}
	h := r
	h.Hidden = true
	if h.Adjust(40) != h {
		t.Fatal("hidden region with VTEnd >= ct must not adjust")
	}
	hn := Region{TTBegin: 1, TTEnd: chronon.UC, VTBegin: 1, VTEnd: chronon.NOW, Hidden: true}
	if hn.Adjust(100) != hn {
		t.Fatal("hidden region with variable VTEnd must not adjust")
	}
}

func TestRegionPredicates(t *testing.T) {
	ct := chronon.Instant(100)
	stair := Region{TTBegin: 10, TTEnd: chronon.UC, VTBegin: 10, VTEnd: chronon.NOW}
	// Every cell of rect satisfies v <= t (worst cell is (25, 25)), so it
	// lies inside the stair.
	rect := Region{TTBegin: 25, TTEnd: 40, VTBegin: 15, VTEnd: 25, Rect: true}
	far := Region{TTBegin: 20, TTEnd: 40, VTBegin: 80, VTEnd: 90, Rect: true}

	if !stair.Overlaps(rect, ct) {
		t.Error("stair must overlap the low rectangle")
	}
	if stair.Overlaps(far, ct) {
		t.Error("stair must not overlap the rectangle above v=t in its range")
	}
	if !stair.Contains(rect, ct) {
		t.Error("stair contains the low rectangle at ct=100")
	}
	if !rect.ContainedIn(stair, ct) {
		t.Error("ContainedIn is the converse of Contains")
	}
	if stair.Equal(rect, ct) || !stair.Equal(stair, ct) {
		t.Error("equality")
	}
	if a := stair.Area(ct); a <= 0 {
		t.Errorf("area %v", a)
	}
	if ia := stair.IntersectionArea(rect, ct); ia != rect.Area(ct) {
		t.Errorf("intersection of containing pair must equal contained area: %v vs %v", ia, rect.Area(ct))
	}
}

func TestEnlargement(t *testing.T) {
	ct := chronon.Instant(100)
	pol := BoundPolicy{TimeParam: 10, AllowHidden: true}
	bound := Region{TTBegin: 10, TTEnd: 50, VTBegin: 10, VTEnd: 50, Rect: true}
	inside := Region{TTBegin: 20, TTEnd: 30, VTBegin: 20, VTEnd: 30, Rect: true}
	outside := Region{TTBegin: 60, TTEnd: 70, VTBegin: 60, VTEnd: 70, Rect: true}

	d0, u0 := bound.Enlargement(inside, ct, pol)
	if d0 != 0 {
		t.Errorf("enlargement by contained region: %v", d0)
	}
	if !u0.Contains(inside, ct) || !u0.Contains(bound, ct) {
		t.Error("union must contain both")
	}
	d1, u1 := bound.Enlargement(outside, ct, pol)
	if d1 <= 0 {
		t.Errorf("enlargement by disjoint region must be positive: %v", d1)
	}
	if !u1.Contains(outside, ct) {
		t.Error("union must contain the added region")
	}
}

// TestUnionMonotone: the pairwise union contains both operands at several
// later times, across random region pairs.
func TestUnionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ct := chronon.Instant(100)
	for i := 0; i < 300; i++ {
		a := randomValidExtent(rng, ct).Region()
		b := randomValidExtent(rng, ct).Region()
		u := a.Union(b, ct, DefaultBoundPolicy)
		for _, at := range []chronon.Instant{ct, ct + 50, ct + 365, ct + 366, ct + 5000} {
			us := u.Resolve(at)
			if !us.ContainsShape(a.Resolve(at)) || !us.ContainsShape(b.Resolve(at)) {
				t.Fatalf("union %v of %v and %v fails at ct+%d", u, a, b, at-ct)
			}
		}
	}
}

// TestBoundOfBoundsContains: bounding is composable — a bound over bounds
// contains all grandchildren (the multi-level GR-tree invariant).
func TestBoundOfBoundsContains(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ct := chronon.Instant(100)
	pol := DefaultBoundPolicy
	for trial := 0; trial < 100; trial++ {
		var level1 []Region
		var leaves []Region
		for g := 0; g < 3; g++ {
			var group []Region
			for i := 0; i < 4; i++ {
				r := randomValidExtent(rng, ct).Region()
				group = append(group, r)
				leaves = append(leaves, r)
			}
			level1 = append(level1, Bound(group, ct, pol))
		}
		root := Bound(level1, ct, pol)
		for _, at := range []chronon.Instant{ct, ct + 365, ct + 2000} {
			rs := root.Resolve(at)
			for _, l := range leaves {
				if !rs.ContainsShape(l.Resolve(at)) {
					t.Fatalf("trial %d: root %v misses leaf %v at ct+%d", trial, root, l, at-ct)
				}
			}
		}
	}
}

func TestBoundEmptyInput(t *testing.T) {
	b := Bound(nil, 100, DefaultBoundPolicy)
	if !b.Rect {
		t.Fatalf("empty bound: %v", b)
	}
}

func TestRegionString(t *testing.T) {
	s := Region{TTBegin: 0, TTEnd: chronon.UC, VTBegin: 0, VTEnd: chronon.NOW}.String()
	if s == "" {
		t.Fatal("empty string")
	}
	h := Region{TTBegin: 0, TTEnd: chronon.UC, VTBegin: 0, VTEnd: 10, Rect: true, Hidden: true}.String()
	if h == s {
		t.Fatal("flags must render")
	}
}
