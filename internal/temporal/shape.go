package temporal

import (
	"fmt"

	"repro/internal/chronon"
)

// Shape is a concrete (fully resolved, variable-free) bitemporal region in
// the transaction-time × valid-time plane, over closed chronon intervals:
//
//	{ (t, v) : TTBegin <= t <= TTEnd,
//	           VTBegin <= v <= VTEnd        (rectangle), or
//	           VTBegin <= v <= min(VTEnd,t) (stair) }
//
// The family is closed under intersection (the minimum of rectangle tops and
// stair tops is again of this form), which makes overlap, containment, and
// intersection-area computations exact and cheap. A "pure" stair as drawn in
// Figure 1 has VTEnd = TTEnd; clipped stairs with a lower cap arise from
// intersections.
type Shape struct {
	TTBegin, TTEnd int64
	VTBegin, VTEnd int64
	Stair          bool
}

// Rect returns a rectangle shape.
func Rect(ttb, tte, vtb, vte int64) Shape {
	return Shape{TTBegin: ttb, TTEnd: tte, VTBegin: vtb, VTEnd: vte}
}

// Stair returns a stair shape whose top boundary is v = t, spanning
// transaction times [ttb, tte] above valid-time floor vtb.
func StairShape(ttb, tte, vtb int64) Shape {
	return Shape{TTBegin: ttb, TTEnd: tte, VTBegin: vtb, VTEnd: tte, Stair: true}
}

// Empty reports whether the shape contains no chronon cell.
func (s Shape) Empty() bool {
	if s.TTBegin > s.TTEnd || s.VTBegin > s.VTEnd {
		return true
	}
	if s.Stair {
		// Some column t must reach the floor: need t >= VTBegin for t <= TTEnd.
		return s.TTEnd < s.VTBegin
	}
	return false
}

// Contains reports whether the cell (t, v) lies inside the shape.
func (s Shape) ContainsPoint(t, v int64) bool {
	if t < s.TTBegin || t > s.TTEnd || v < s.VTBegin || v > s.VTEnd {
		return false
	}
	if s.Stair && v > t {
		return false
	}
	return true
}

// Area returns the number of chronon cells in the shape.
func (s Shape) Area() float64 {
	if s.Empty() {
		return 0
	}
	if !s.Stair {
		return float64(s.TTEnd-s.TTBegin+1) * float64(s.VTEnd-s.VTBegin+1)
	}
	// Stair columns: for t in [a, b], height = max(0, min(VTEnd, t) - VTBegin + 1).
	a := s.TTBegin
	if a < s.VTBegin {
		a = s.VTBegin // columns left of the floor are empty
	}
	b := s.TTEnd
	if a > b {
		return 0
	}
	var area float64
	// Triangular part: t in [a, min(b, VTEnd)] has height t - VTBegin + 1.
	m := b
	if m > s.VTEnd {
		m = s.VTEnd
	}
	if a <= m {
		n := float64(m - a + 1)
		area += n*float64(1-s.VTBegin) + float64(a+m)*n/2
	}
	// Rectangular tail: t in [max(a, VTEnd+1), b] has height VTEnd - VTBegin + 1.
	ta := a
	if ta < s.VTEnd+1 {
		ta = s.VTEnd + 1
	}
	if ta <= b {
		area += float64(b-ta+1) * float64(s.VTEnd-s.VTBegin+1)
	}
	return area
}

// Intersect returns the intersection of two shapes; the result may be empty.
func (s Shape) Intersect(o Shape) Shape {
	r := Shape{
		TTBegin: maxi(s.TTBegin, o.TTBegin),
		TTEnd:   mini(s.TTEnd, o.TTEnd),
		VTBegin: maxi(s.VTBegin, o.VTBegin),
		VTEnd:   mini(s.VTEnd, o.VTEnd),
		Stair:   s.Stair || o.Stair,
	}
	return r
}

// Overlaps reports whether the two shapes share at least one cell.
func (s Shape) Overlaps(o Shape) bool {
	return !s.Intersect(o).Empty()
}

// IntersectionArea returns the number of cells shared by the two shapes.
func (s Shape) IntersectionArea(o Shape) float64 {
	return s.Intersect(o).Area()
}

// ContainsShape reports whether o is a (possibly improper) subset of s.
// An empty o is contained in everything.
func (s Shape) ContainsShape(o Shape) bool {
	if o.Empty() {
		return true
	}
	return s.Intersect(o).Area() == o.Area()
}

// EqualShape reports whether the two shapes cover exactly the same cells.
func (s Shape) EqualShape(o Shape) bool {
	if s.Empty() || o.Empty() {
		return s.Empty() && o.Empty()
	}
	a, b := s.Area(), o.Area()
	return a == b && s.Intersect(o).Area() == a
}

// BoundingBox returns the tight rectangular bounding box of the shape.
func (s Shape) BoundingBox() Shape {
	if s.Empty() {
		return s
	}
	if !s.Stair {
		return s
	}
	a := maxi(s.TTBegin, s.VTBegin)
	top := mini(s.TTEnd, s.VTEnd)
	return Rect(a, s.TTEnd, s.VTBegin, top)
}

// Margin returns the half-perimeter of the shape's bounding box, the measure
// used by the R*-style split axis choice.
func (s Shape) Margin() float64 {
	if s.Empty() {
		return 0
	}
	b := s.BoundingBox()
	return float64(b.TTEnd-b.TTBegin+1) + float64(b.VTEnd-b.VTBegin+1)
}

// String renders the shape for diagnostics and tree dumps.
func (s Shape) String() string {
	kind := "rect"
	if s.Stair {
		kind = "stair"
	}
	return fmt.Sprintf("%s[tt %d..%d, vt %d..%d]", kind, s.TTBegin, s.TTEnd, s.VTBegin, s.VTEnd)
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func ground(t chronon.Instant) int64 { return int64(t) }
