// Package temporal implements the bitemporal data model of Section 2 of the
// paper and the region geometry of Section 3: four-timestamp (4TS) time
// extents with the variables UC and NOW, the six qualitatively different
// timestamp combinations of Figure 2, the rectangle and stair-shape regions
// of Figure 1, and the minimum-bounding-region algebra (with the "Rectangle"
// and "Hidden" flags) that the GR-tree stores in its nodes.
package temporal

import (
	"fmt"
	"strings"

	"repro/internal/chronon"
)

// Extent is a tuple's bitemporal time extent in TQuel's four-timestamp
// format (Section 2): the transaction-time interval [TTBegin, TTEnd] and the
// valid-time interval [VTBegin, VTEnd], both closed. TTEnd may be the
// variable UC; VTEnd may be the variable NOW.
type Extent struct {
	TTBegin chronon.Instant
	TTEnd   chronon.Instant
	VTBegin chronon.Instant
	VTEnd   chronon.Instant
}

// Case identifies one of the six qualitatively different combinations of
// time attributes (Figure 2).
type Case int

const (
	// CaseInvalid marks an extent violating the constraints of Section 2.
	CaseInvalid Case = 0
	// Case1: (tt1, UC, vt1, vt2) — rectangle growing in transaction time.
	Case1 Case = 1
	// Case2: (tt1, tt2, vt1, vt2) — static rectangle.
	Case2 Case = 2
	// Case3: (tt1, UC, vt1, NOW), tt1 = vt1 — growing stair-shape.
	Case3 Case = 3
	// Case4: (tt1, tt2, vt1, NOW), tt1 = vt1 — static stair-shape.
	Case4 Case = 4
	// Case5: (tt1, UC, vt1, NOW), tt1 > vt1 — growing stair with a high
	// first step.
	Case5 Case = 5
	// Case6: (tt1, tt2, vt1, NOW), tt1 > vt1 — static stair with a high
	// first step.
	Case6 Case = 6
)

func (c Case) String() string {
	if c == CaseInvalid {
		return "invalid"
	}
	return fmt.Sprintf("case %d", int(c))
}

// Case classifies the extent per Figure 2. Extents that fit none of the six
// rows (for example VTEnd = NOW with TTBegin < VTBegin, which violates the
// valid-time insertion constraint) classify as CaseInvalid.
func (e Extent) Case() Case {
	if e.TTBegin.IsVariable() || e.VTBegin.IsVariable() ||
		e.TTEnd == chronon.NOW || e.VTEnd == chronon.UC {
		return CaseInvalid
	}
	ttGrowing := e.TTEnd == chronon.UC
	if !ttGrowing && e.TTEnd < e.TTBegin {
		return CaseInvalid
	}
	switch {
	case e.VTEnd != chronon.NOW:
		if e.VTEnd < e.VTBegin {
			return CaseInvalid
		}
		if ttGrowing {
			return Case1
		}
		return Case2
	case e.TTBegin == e.VTBegin:
		if ttGrowing {
			return Case3
		}
		return Case4
	case e.TTBegin > e.VTBegin:
		if ttGrowing {
			return Case5
		}
		return Case6
	default: // TTBegin < VTBegin with VTEnd = NOW: VT end would precede VT begin.
		return CaseInvalid
	}
}

// Valid reports whether the extent is one of the six legal combinations.
func (e Extent) Valid() bool { return e.Case() != CaseInvalid }

// ValidateInsert checks the insertion constraints of Section 2 against the
// current time ct: VTBegin <= VTEnd; VTBegin <= ct when VTEnd is NOW;
// TTBegin = ct; TTEnd = UC.
func (e Extent) ValidateInsert(ct chronon.Instant) error {
	if e.TTBegin != ct {
		return fmt.Errorf("temporal: insertion requires TTBegin = current time (%v), got %v", ct, e.TTBegin)
	}
	if e.TTEnd != chronon.UC {
		return fmt.Errorf("temporal: insertion requires TTEnd = UC, got %v", e.TTEnd)
	}
	if e.VTBegin.IsVariable() {
		return fmt.Errorf("temporal: VTBegin must be a ground value, got %v", e.VTBegin)
	}
	if e.VTEnd == chronon.NOW {
		if e.VTBegin > ct {
			return fmt.Errorf("temporal: VTBegin (%v) must not exceed current time (%v) when VTEnd is NOW", e.VTBegin, ct)
		}
		return nil
	}
	if e.VTEnd == chronon.UC {
		return fmt.Errorf("temporal: VTEnd may be NOW or ground, not UC")
	}
	if e.VTBegin > e.VTEnd {
		return fmt.Errorf("temporal: VTBegin (%v) exceeds VTEnd (%v)", e.VTBegin, e.VTEnd)
	}
	return nil
}

// ValidAt reports whether the extent is one of the six legal combinations
// AND satisfies the transaction-time constraints relative to the current
// time ct: transaction time cannot begin or (when ground) end beyond the
// current time (Section 2: "the transaction time of a tuple cannot extend
// beyond the current time"). Indexes enforce this on insertion — their
// bounding-region invariants assume it.
func (e Extent) ValidAt(ct chronon.Instant) bool {
	if !e.Valid() {
		return false
	}
	if e.TTBegin > ct {
		return false
	}
	return e.TTEnd == chronon.UC || e.TTEnd <= ct
}

// Current reports whether the extent belongs to the current database state
// (TTEnd = UC). Only current tuples may be logically deleted or modified.
func (e Extent) Current() bool { return e.TTEnd == chronon.UC }

// Deleted returns the extent after a logical deletion at current time ct:
// the TTEnd value UC is replaced by the fixed value ct-1 (Section 2). The
// receiver must be current.
func (e Extent) Deleted(ct chronon.Instant) (Extent, error) {
	if !e.Current() {
		return Extent{}, fmt.Errorf("temporal: cannot delete non-current extent %v", e)
	}
	e.TTEnd = ct - 1
	if e.TTEnd < e.TTBegin {
		// A tuple inserted and deleted within the same chronon leaves a
		// degenerate transaction-time interval of a single chronon.
		e.TTEnd = e.TTBegin
	}
	return e, nil
}

// NowRelative reports whether either interval end tracks the current time.
func (e Extent) NowRelative() bool {
	return e.TTEnd == chronon.UC || e.VTEnd == chronon.NOW
}

// String renders the extent in the paper's query-literal order:
// "TTbegin, TTend, VTbegin, VTend", e.g. "12/10/95, UC, 12/10/95, NOW"
// (rendered with ISO ground dates).
func (e Extent) String() string {
	return fmt.Sprintf("%v, %v, %v, %v", e.TTBegin, e.TTEnd, e.VTBegin, e.VTEnd)
}

// ParseExtent parses the textual form produced by String and accepted in SQL
// literals: four comma-separated timestamps (see chronon.Parse for the
// timestamp forms).
func ParseExtent(s string) (Extent, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return Extent{}, fmt.Errorf("temporal: extent literal needs 4 timestamps, got %d in %q", len(parts), s)
	}
	var ts [4]chronon.Instant
	for i, p := range parts {
		t, err := chronon.Parse(p)
		if err != nil {
			return Extent{}, fmt.Errorf("temporal: extent literal %q: %w", s, err)
		}
		ts[i] = t
	}
	return Extent{TTBegin: ts[0], TTEnd: ts[1], VTBegin: ts[2], VTEnd: ts[3]}, nil
}

// MustParseExtent is ParseExtent that panics on error (tests and examples).
func MustParseExtent(s string) Extent {
	e, err := ParseExtent(s)
	if err != nil {
		panic(err)
	}
	return e
}

// Region converts the extent to its bitemporal region. A leaf-level extent
// is a stair-shape exactly when VTEnd is NOW (Section 3).
func (e Extent) Region() Region {
	return Region{
		TTBegin: e.TTBegin, TTEnd: e.TTEnd,
		VTBegin: e.VTBegin, VTEnd: e.VTEnd,
		Rect: e.VTEnd != chronon.NOW,
	}
}
