package temporal

import (
	"testing"
	"testing/quick"
)

// enumerate returns the set of cells of s within the window [-2, lim]², used
// to cross-check the closed-form algebra against brute force.
func enumerate(s Shape, lim int64) map[[2]int64]bool {
	cells := make(map[[2]int64]bool)
	for t := int64(-2); t <= lim; t++ {
		for v := int64(-2); v <= lim; v++ {
			if s.ContainsPoint(t, v) {
				cells[[2]int64{t, v}] = true
			}
		}
	}
	return cells
}

// smallShapes generates a diverse set of shapes with coordinates in [0, lim].
func smallShapes(lim int64) []Shape {
	var out []Shape
	for ttb := int64(0); ttb <= lim; ttb += 3 {
		for tte := ttb - 1; tte <= lim; tte += 3 {
			for vtb := int64(0); vtb <= lim; vtb += 3 {
				for vte := vtb - 1; vte <= lim; vte += 3 {
					out = append(out,
						Rect(ttb, tte, vtb, vte),
						Shape{TTBegin: ttb, TTEnd: tte, VTBegin: vtb, VTEnd: vte, Stair: true})
				}
			}
		}
	}
	return out
}

func TestShapeAreaBruteForce(t *testing.T) {
	const lim = 12
	for _, s := range smallShapes(lim) {
		want := float64(len(enumerate(s, lim+4)))
		if got := s.Area(); got != want {
			t.Fatalf("%v: Area = %v, want %v", s, got, want)
		}
		if s.Empty() != (want == 0) {
			t.Fatalf("%v: Empty = %v but area %v", s, s.Empty(), want)
		}
	}
}

func TestShapeIntersectBruteForce(t *testing.T) {
	const lim = 9
	shapes := smallShapes(lim)
	for i := 0; i < len(shapes); i += 7 {
		for j := 0; j < len(shapes); j += 11 {
			a, b := shapes[i], shapes[j]
			cellsA, cellsB := enumerate(a, lim+4), enumerate(b, lim+4)
			inter := 0
			for c := range cellsA {
				if cellsB[c] {
					inter++
				}
			}
			if got := a.IntersectionArea(b); got != float64(inter) {
				t.Fatalf("%v ∩ %v: area %v, want %d", a, b, got, inter)
			}
			if got := a.Overlaps(b); got != (inter > 0) {
				t.Fatalf("%v overlaps %v: %v, want %v", a, b, got, inter > 0)
			}
			contains := len(cellsB) > 0 || true
			for c := range cellsB {
				if !cellsA[c] {
					contains = false
					break
				}
			}
			if got := a.ContainsShape(b); got != contains {
				t.Fatalf("%v contains %v: %v, want %v", a, b, got, contains)
			}
			equal := len(cellsA) == len(cellsB) && inter == len(cellsA)
			if got := a.EqualShape(b); got != equal {
				t.Fatalf("%v equal %v: %v, want %v", a, b, got, equal)
			}
		}
	}
}

func TestStairShapeGeometry(t *testing.T) {
	// A growing stair resolved at ct=8 starting at tt=3, floor vt=1:
	// columns t=3..8 with v from 1..t.
	s := StairShape(3, 8, 1)
	if s.Empty() {
		t.Fatal("stair must be non-empty")
	}
	want := float64(0)
	for tt := int64(3); tt <= 8; tt++ {
		want += float64(tt - 1 + 1)
	}
	if got := s.Area(); got != want {
		t.Fatalf("stair area %v, want %v", got, want)
	}
	if !s.ContainsPoint(5, 5) || s.ContainsPoint(5, 6) {
		t.Fatal("stair boundary v=t must be inclusive, v>t excluded")
	}
	if !s.ContainsPoint(3, 1) || s.ContainsPoint(2, 1) {
		t.Fatal("stair tt-begin boundary")
	}
}

func TestStairHighFirstStep(t *testing.T) {
	// Case 5: tt1 > vt1 yields a high first step: at t=tt1 the column spans
	// vt1..tt1 (Figure 1, case 5).
	s := StairShape(5, 9, 2)
	for v := int64(2); v <= 5; v++ {
		if !s.ContainsPoint(5, v) {
			t.Fatalf("first step must include (5,%d)", v)
		}
	}
	if s.ContainsPoint(5, 6) {
		t.Fatal("first step must stop at v=t")
	}
}

func TestStairEmptyFloorAboveTop(t *testing.T) {
	// Floor above the last column: no cell can satisfy vtb <= v <= t.
	s := StairShape(2, 4, 6)
	if !s.Empty() || s.Area() != 0 {
		t.Fatalf("stair with floor above top must be empty, got area %v", s.Area())
	}
}

func TestBoundingBoxAndMargin(t *testing.T) {
	s := StairShape(3, 8, 1)
	bb := s.BoundingBox()
	if bb.TTBegin != 3 || bb.TTEnd != 8 || bb.VTBegin != 1 || bb.VTEnd != 8 || bb.Stair {
		t.Fatalf("stair bbox = %v", bb)
	}
	if got := s.Margin(); got != float64(8-3+1)+float64(8-1+1) {
		t.Fatalf("margin %v", got)
	}
	// Clipped stair bbox: cap below tt-end.
	c := Shape{TTBegin: 3, TTEnd: 8, VTBegin: 1, VTEnd: 5, Stair: true}
	bb = c.BoundingBox()
	if bb.VTEnd != 5 {
		t.Fatalf("clipped stair bbox top = %d, want 5", bb.VTEnd)
	}
	// Stair with floor > tt-begin: bbox tt-begin is the floor.
	f := StairShape(1, 8, 4)
	if bb := f.BoundingBox(); bb.TTBegin != 4 {
		t.Fatalf("floor-limited stair bbox tt-begin = %d, want 4", bb.TTBegin)
	}
}

func TestEqualStairRectDegenerate(t *testing.T) {
	// A stair whose constraint never binds equals the rectangle it fills.
	s := Shape{TTBegin: 5, TTEnd: 8, VTBegin: 0, VTEnd: 3, Stair: true}
	r := Rect(5, 8, 0, 3)
	if !s.EqualShape(r) || !r.EqualShape(s) {
		t.Fatal("non-binding stair must equal its rectangle")
	}
	// A single-column stair equals the column rectangle.
	col := Shape{TTBegin: 6, TTEnd: 6, VTBegin: 2, VTEnd: 6, Stair: true}
	if !col.EqualShape(Rect(6, 6, 2, 6)) {
		t.Fatal("single-column stair must equal column rect")
	}
}

func TestIntersectClosedUnderFamily(t *testing.T) {
	// rect ∩ stair is a capped stair; verify a hand-computed case.
	r := Rect(0, 10, 0, 3)
	s := StairShape(5, 8, 2)
	got := r.Intersect(s)
	// cells: t in 5..8, v in 2..min(3,t) = 2..3 → 4*2 = 8 cells.
	if got.Area() != 8 {
		t.Fatalf("capped stair area %v, want 8", got.Area())
	}
}

func TestShapePropertyIntersectionCommutes(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint8, sa, sb bool) bool {
		a := Shape{TTBegin: int64(a0 % 16), TTEnd: int64(a1 % 16), VTBegin: int64(a2 % 16), VTEnd: int64(a3 % 16), Stair: sa}
		b := Shape{TTBegin: int64(b0 % 16), TTEnd: int64(b1 % 16), VTBegin: int64(b2 % 16), VTEnd: int64(b3 % 16), Stair: sb}
		return a.IntersectionArea(b) == b.IntersectionArea(a) &&
			a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShapePropertyIntersectionBounded(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint8, sa, sb bool) bool {
		a := Shape{TTBegin: int64(a0 % 16), TTEnd: int64(a1 % 16), VTBegin: int64(a2 % 16), VTEnd: int64(a3 % 16), Stair: sa}
		b := Shape{TTBegin: int64(b0 % 16), TTEnd: int64(b1 % 16), VTBegin: int64(b2 % 16), VTEnd: int64(b3 % 16), Stair: sb}
		ia := a.IntersectionArea(b)
		return ia <= a.Area() && ia <= b.Area() && ia >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShapePropertySelfIdentity(t *testing.T) {
	f := func(a0, a1, a2, a3 uint8, st bool) bool {
		a := Shape{TTBegin: int64(a0 % 16), TTEnd: int64(a1 % 16), VTBegin: int64(a2 % 16), VTEnd: int64(a3 % 16), Stair: st}
		return a.ContainsShape(a) && a.EqualShape(a) && a.IntersectionArea(a) == a.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
