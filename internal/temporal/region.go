package temporal

import (
	"fmt"

	"repro/internal/chronon"
)

// Region is a possibly growing bitemporal region as stored in a GR-tree node
// entry (Section 3): four timestamps, where TTEnd may be the variable UC and
// VTEnd the variable NOW, plus the two flags of a non-leaf entry.
//
// The "Rectangle" flag distinguishes the two readings of the timestamp
// combination (tt1, UC, vt1, NOW): with Rect set it is a rectangle growing in
// both transaction and valid time; cleared it is a stair-shape. For leaf
// extents the flag is derived (VTEnd = NOW means stair) and Hidden is false.
//
// The "Hidden" flag marks a bounding rectangle with a fixed valid-time end
// that encloses a growing stair-shape; one day the stair outgrows the
// rectangle, and Adjust repairs the region per the paper's algorithm.
type Region struct {
	TTBegin chronon.Instant
	TTEnd   chronon.Instant
	VTBegin chronon.Instant
	VTEnd   chronon.Instant
	Rect    bool
	Hidden  bool
}

// Growing reports whether the region still grows as time passes
// (TTEnd = UC; Section 2: regions stop growing when logically deleted).
func (r Region) Growing() bool { return r.TTEnd == chronon.UC }

// StairFlag reports whether the region is encoded as a stair-shape
// (VTEnd = NOW with the Rectangle flag cleared).
func (r Region) StairFlag() bool { return r.VTEnd == chronon.NOW && !r.Rect }

// Adjust applies the paper's Hidden-flag algorithm (Section 3):
//
//	IF flag Hidden is set AND VTend is fixed AND VTend is less than the
//	current time THEN set VTend to NOW
//
// After the adjustment the entry reads as a rectangle growing in both
// dimensions, a conservative superset of the hidden stair that outgrew it.
func (r Region) Adjust(ct chronon.Instant) Region {
	if r.Hidden && r.VTEnd.IsGround() && r.VTEnd < ct {
		r.VTEnd = chronon.NOW
		r.Rect = true
	}
	return r
}

// Resolve materialises the region's exact geometry at current time ct,
// applying the paper's variable-resolution algorithm (Section 3):
//
//	IF TTend is equal to UC THEN set TTend to the current time
//	IF VTend is equal to NOW THEN set VTend to TTend
func (r Region) Resolve(ct chronon.Instant) Shape {
	r = r.Adjust(ct)
	tte := r.TTEnd
	if tte == chronon.UC {
		tte = ct
	}
	vte := r.VTEnd
	if vte == chronon.NOW {
		vte = tte
	}
	return Shape{
		TTBegin: ground(r.TTBegin), TTEnd: ground(tte),
		VTBegin: ground(r.VTBegin), VTEnd: ground(vte),
		Stair: r.StairFlag(),
	}
}

// Empty reports whether the region is empty at time ct.
func (r Region) Empty(ct chronon.Instant) bool { return r.Resolve(ct).Empty() }

// Overlaps reports whether the regions share a cell at time ct.
func (r Region) Overlaps(o Region, ct chronon.Instant) bool {
	return r.Resolve(ct).Overlaps(o.Resolve(ct))
}

// Contains reports whether o lies inside r at time ct.
func (r Region) Contains(o Region, ct chronon.Instant) bool {
	return r.Resolve(ct).ContainsShape(o.Resolve(ct))
}

// ContainedIn reports whether r lies inside o at time ct.
func (r Region) ContainedIn(o Region, ct chronon.Instant) bool {
	return o.Resolve(ct).ContainsShape(r.Resolve(ct))
}

// Equal reports whether the regions cover the same cells at time ct.
func (r Region) Equal(o Region, ct chronon.Instant) bool {
	return r.Resolve(ct).EqualShape(o.Resolve(ct))
}

// Area is the support function Size: the region's area at time ct.
func (r Region) Area(ct chronon.Instant) float64 { return r.Resolve(ct).Area() }

// IntersectionArea is the support function Inter evaluated at time ct.
func (r Region) IntersectionArea(o Region, ct chronon.Instant) float64 {
	return r.Resolve(ct).IntersectionArea(o.Resolve(ct))
}

// FitsUnderStair reports whether the region stays below the line v = t at
// all current and future times, i.e., whether it can live inside a
// stair-shaped bound (Figure 4(b): "none of the included regions extend
// above the line y = x").
func (r Region) FitsUnderStair() bool {
	if r.VTEnd == chronon.NOW {
		// A stair-shape stays under v = t by construction. A growing
		// rectangle (NOW with the Rect flag) reaches (TTBegin, ct) and
		// eventually exceeds the line at its left edge.
		return !r.Rect
	}
	// Fixed valid-time top: the topmost-left cell is (TTBegin, VTEnd).
	return r.VTEnd <= r.TTBegin
}

// finalVTEnd returns the largest valid-time value the region will ever
// reach, or NOW if it grows in valid time without bound.
func (r Region) finalVTEnd() chronon.Instant {
	if r.VTEnd != chronon.NOW {
		return r.VTEnd
	}
	if r.TTEnd == chronon.UC {
		return chronon.NOW // grows forever
	}
	return r.TTEnd // static stair (or static both-dims rect) stopped at TTEnd
}

// String renders the region with its flags for diagnostics and tree dumps.
func (r Region) String() string {
	flags := ""
	if r.VTEnd == chronon.NOW {
		if r.Rect {
			flags = " R"
		} else {
			flags = " S"
		}
	}
	if r.Hidden {
		flags += " H"
	}
	return fmt.Sprintf("(%v, %v, %v, %v%s)", r.TTBegin, r.TTEnd, r.VTBegin, r.VTEnd, flags)
}

// BoundPolicy tunes the minimum-bounding-region computation.
type BoundPolicy struct {
	// TimeParam is the paper's time parameter (Section 3): candidate bounds
	// are scored by their area at current time + TimeParam chronons,
	// capturing the development of entries over time.
	TimeParam int64
	// AllowHidden permits fixed-VTEnd rectangle bounds with the Hidden flag
	// around small growing stairs (Figure 4(c)). Disabling it forces growing
	// bounds, an ablation knob.
	AllowHidden bool
}

// DefaultBoundPolicy mirrors the prototype's behaviour: a 365-chronon (one
// year at day granularity) horizon with hidden bounds enabled.
var DefaultBoundPolicy = BoundPolicy{TimeParam: 365, AllowHidden: true}

// Bound computes a minimum bounding region of the given regions as of
// current time ct: the smallest region (by area at ct+TimeParam) among the
// valid candidates — a stair-shape bound when every child fits under v = t,
// a plain rectangle, a rectangle growing in both dimensions, or a fixed
// rectangle with the Hidden flag around growing stairs (Figure 4(c)).
//
// The Hidden mechanism is not merely an optimisation: a rectangle growing in
// both dimensions has a valid-time top of only the current time, so it
// cannot bound a sibling whose fixed valid-time end lies in the future. In
// that mixed situation a fixed rectangle carrying the Hidden flag is the
// only legal bound, and Adjust repairs it once the growing regions outgrow
// it.
//
// The returned bound contains every child at ct and at every later time
// (after Adjust), which is the GR-tree's structural invariant.
func Bound(regions []Region, ct chronon.Instant, pol BoundPolicy) Region {
	if len(regions) == 0 {
		return Region{TTBegin: 0, TTEnd: 0, VTBegin: 0, VTEnd: 0, Rect: true}
	}
	ttb := regions[0].TTBegin
	vtb := regions[0].VTBegin
	growing := false                                     // some child grows in transaction time
	vtGrowing := false                                   // some child grows in valid time without bound
	stairOK := true                                      // a stair bound is legal
	var maxTTE chronon.Instant = chronon.MinInstant      // max final TTEnd among non-growing
	var maxFixedVTE chronon.Instant = chronon.MinInstant // max final VTEnd among vt-bounded
	for _, r := range regions {
		r = r.Adjust(ct)
		if r.TTBegin < ttb {
			ttb = r.TTBegin
		}
		if r.VTBegin < vtb {
			vtb = r.VTBegin
		}
		if r.TTEnd == chronon.UC {
			growing = true
		} else if r.TTEnd > maxTTE {
			maxTTE = r.TTEnd
		}
		if !r.FitsUnderStair() {
			stairOK = false
		}
		fv := r.finalVTEnd()
		if fv == chronon.NOW || r.Hidden {
			// A hidden child is a grower in disguise: it will outgrow its
			// fixed top one day, so the bound must anticipate valid-time
			// growth — while still covering the hidden top now.
			vtGrowing = true
		}
		if fv != chronon.NOW && fv > maxFixedVTE {
			maxFixedVTE = fv
		}
	}
	tte := maxTTE
	if growing {
		tte = chronon.UC
	}

	// Candidate validity is analytic:
	//   - a stair bound is valid exactly when every child fits under v = t
	//     (stairOK): its transaction range and floor cover by construction;
	//   - a plain rectangle is valid when no child grows in valid time: its
	//     fixed top is the maximum final child top;
	//   - a rectangle growing in both dimensions has top = current time, so
	//     it is valid only when no fixed child top lies in the future
	//     (maxFixedVTE <= ct);
	//   - a hidden fixed rectangle is valid when its fixed top covers the
	//     growers' current tops (maxFixedVTE >= ct); Adjust repairs it after
	//     outgrowth.
	// (The randomized temporal tests verify these rules against shape
	// containment over many future probe times.)
	var candidates []Region
	if stairOK {
		candidates = append(candidates, Region{
			TTBegin: ttb, TTEnd: tte, VTBegin: vtb, VTEnd: chronon.NOW, Rect: false,
		})
	}
	if !vtGrowing {
		candidates = append(candidates, Region{
			TTBegin: ttb, TTEnd: tte, VTBegin: vtb, VTEnd: maxFixedVTE, Rect: true,
		})
	} else {
		if maxFixedVTE <= ct {
			// Rectangle growing in both dimensions (Figure 4(a)).
			candidates = append(candidates, Region{
				TTBegin: ttb, TTEnd: tte, VTBegin: vtb, VTEnd: chronon.NOW, Rect: true,
			})
		}
		if pol.AllowHidden && maxFixedVTE >= ct {
			candidates = append(candidates, Region{
				TTBegin: ttb, TTEnd: tte, VTBegin: vtb, VTEnd: maxFixedVTE,
				Rect: true, Hidden: true,
			})
		}
	}
	if len(candidates) == 0 {
		// Mixed growing stairs and future fixed tops with hiding disabled by
		// policy: hiding is the only legal encoding, so force it.
		return Region{
			TTBegin: ttb, TTEnd: tte, VTBegin: vtb,
			VTEnd: chronon.Max(maxFixedVTE, ct), Rect: true, Hidden: true,
		}
	}

	horizon := ct + chronon.Instant(pol.TimeParam)
	best := candidates[0]
	bestArea := best.Resolve(horizon).Area()
	for _, c := range candidates[1:] {
		if a := c.Resolve(horizon).Area(); a < bestArea {
			best, bestArea = c, a
		}
	}
	return best
}

// Union returns the minimum bounding region of r and o as of ct.
func (r Region) Union(o Region, ct chronon.Instant, pol BoundPolicy) Region {
	return Bound([]Region{r, o}, ct, pol)
}

// Enlargement returns how much r's area at ct+TimeParam grows when extended
// to also cover o, together with the extended bound. This is the metric the
// GR-tree's ChooseSubtree uses (time-parameterised R* area enlargement).
func (r Region) Enlargement(o Region, ct chronon.Instant, pol BoundPolicy) (float64, Region) {
	u := r.Union(o, ct, pol)
	horizon := ct + chronon.Instant(pol.TimeParam)
	return u.Resolve(horizon).Area() - r.Resolve(horizon).Area(), u
}

// CoversRegion reports whether bound contains child at ct and will keep
// containing it at all future times (used by invariant checks and am_check).
func (bound Region) CoversRegion(child Region, ct chronon.Instant) bool {
	if !bound.Contains(child, ct) {
		return false
	}
	b := bound.Adjust(ct)
	c := child.Adjust(ct)
	// Transaction-time future: a growing child needs a growing bound.
	if c.TTEnd == chronon.UC && b.TTEnd != chronon.UC {
		return false
	}
	// Valid-time future. A hidden child is a grower in disguise (it will be
	// adjusted to a growing rectangle once outgrown).
	if c.finalVTEnd() == chronon.NOW || c.Hidden {
		// Child's top grows without bound.
		if b.finalVTEnd() == chronon.NOW {
			// Both grow: a stair bound additionally requires the child to
			// stay under v = t.
			return !b.StairFlag() || c.FitsUnderStair()
		}
		// Fixed-top bound around a grower is legal only with the Hidden
		// flag: Adjust repairs it exactly when the child's top (the current
		// time) passes the bound's fixed top, so coverage never lapses. The
		// fixed top must also cover a hidden child's fixed top now.
		return b.Hidden && (c.finalVTEnd() == chronon.NOW || b.VTEnd >= c.VTEnd)
	}
	// Child's top is eventually fixed; containment at ct plus a monotone or
	// hidden-repaired bound keeps holding. The remaining hazard is a stair
	// bound whose top at the child's columns is the diagonal.
	if b.StairFlag() && !c.FitsUnderStair() {
		return false
	}
	return true
}
