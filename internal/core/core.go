// Package core is the front door to the paper's primary contribution: the
// GR-tree access-method DataBlade for now-relative bitemporal data.
//
// The implementation lives in focused packages; this package re-exports the
// public surface a downstream user starts from and documents how the pieces
// fit:
//
//   - temporal   — the bitemporal data model: 4TS time extents with the
//     variables UC and NOW, the six cases of Figure 2, and the
//     rectangle/stair-shape region algebra of Section 3;
//   - grtree     — the GR-tree itself: a time-parameterised R*-tree whose
//     bounding regions grow with the current time, carrying the
//     "Rectangle" and "Hidden" flags;
//   - grtblade   — the DataBlade: the opaque type GRT_TimeExtent_t, the
//     grt_* purpose functions, the operator class, and the
//     registration script (Sections 4–6);
//   - engine     — the extensible server the blade plugs into (the Informix
//     Dynamic Server stand-in);
//   - rstblade   — the R*-tree baseline blade with UC/NOW ground
//     substitution, for comparison.
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
//	e, _ := engine.Open(engine.Options{Clock: clock})
//	grtblade.Register(e)
//	s := e.NewSession()
//	s.Exec(`CREATE SBSPACE spc`)
//	s.Exec(`CREATE TABLE Employees (Name VARCHAR(32), Time_Extent GRT_TimeExtent_t)`)
//	s.Exec(`CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am IN spc`)
//	s.Exec(`INSERT INTO Employees VALUES ('Jane', '5/97, UC, 5/97, NOW')`)
//	s.Exec(`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`)
package core

import (
	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/grtree"
	"repro/internal/temporal"
)

// Re-exported temporal model types.
type (
	// Instant is one chronon (a day) on the time line; the variables UC and
	// NOW are special instants.
	Instant = chronon.Instant
	// Extent is a four-timestamp bitemporal time extent (Section 2).
	Extent = temporal.Extent
	// Region is a possibly growing bitemporal region with the Rectangle and
	// Hidden flags (Section 3).
	Region = temporal.Region
)

// Re-exported temporal variables.
const (
	// UC is the "until changed" transaction-time variable.
	UC = chronon.UC
	// NOW is the current-time valid-time variable.
	NOW = chronon.NOW
)

// Re-exported index types.
type (
	// Tree is the GR-tree.
	Tree = grtree.Tree
	// TreeConfig tunes a GR-tree.
	TreeConfig = grtree.Config
	// Predicate is a search qualification (Overlaps/Equal/Contains/
	// ContainedIn plus a query extent).
	Predicate = grtree.Predicate
	// EngineOptions configures OpenEngine.
	EngineOptions = engine.Options
)

// Engine/blade entry points.
var (
	// OpenEngine opens a database engine (the Informix stand-in).
	OpenEngine = engine.Open
	// RegisterGRTreeBlade installs the GR-tree DataBlade into an engine.
	RegisterGRTreeBlade = grtblade.Register
	// RegisterTypes registers the blade's opaque types only (pass as
	// engine.Options.Types when reopening a persistent database).
	RegisterTypes = grtblade.RegisterTypes
)

// NewVirtualClock returns a manually driven clock; now-relative regions
// grow as it advances.
var NewVirtualClock = chronon.NewVirtualClock

// ParseInstant parses a timestamp ("3/97", "12/10/95", "1997-05-14", "UC",
// "NOW").
var ParseInstant = chronon.Parse

// ParseExtent parses a four-timestamp extent literal
// ("12/10/95, UC, 12/10/95, NOW").
var ParseExtent = temporal.ParseExtent
