package core

import (
	"testing"
)

// TestQuickstartThroughFacade runs the documented quickstart through the
// re-exported surface.
func TestQuickstartThroughFacade(t *testing.T) {
	clock := NewVirtualClock(mustInstant(t, "9/97"))
	e, err := OpenEngine(EngineOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := RegisterGRTreeBlade(e); err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	defer s.Close()
	for _, sql := range []string{
		`CREATE SBSPACE spc`,
		`CREATE TABLE Employees (Name VARCHAR(32), Time_Extent GRT_TimeExtent_t)`,
		`CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am IN spc`,
		`INSERT INTO Employees VALUES ('Jane', '5/97, UC, 5/97, NOW')`,
	} {
		if _, err := s.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	res, err := s.Exec(`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "Jane" {
		t.Fatalf("rows: %v", res.Rows)
	}
	// The temporal re-exports interoperate.
	ext, err := ParseExtent("5/97, UC, 5/97, NOW")
	if err != nil {
		t.Fatal(err)
	}
	if ext.TTEnd != UC || ext.VTEnd != NOW {
		t.Fatalf("extent: %v", ext)
	}
}

func mustInstant(t *testing.T, s string) Instant {
	t.Helper()
	v, err := ParseInstant(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
