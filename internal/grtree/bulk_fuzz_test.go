package grtree

import (
	"math/rand"
	"testing"

	"repro/internal/chronon"
	"repro/internal/temporal"
)

// FuzzEvenPartition pins the run-partitioning invariants the STR packer
// relies on: the runs cover n exactly, none exceeds maxRun, none is empty,
// and the sizes are balanced to within one.
func FuzzEvenPartition(f *testing.F) {
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(7, 3)
	f.Add(100, 8)
	f.Add(64, 64)
	f.Add(65, 64)
	f.Add(4096, 6)
	f.Fuzz(func(t *testing.T, n, maxRun int) {
		if n < 0 || n > 1<<20 || maxRun < 1 || maxRun > 1<<20 {
			t.Skip()
		}
		runs := evenPartition(n, maxRun)
		if len(runs) < 1 {
			t.Fatalf("evenPartition(%d, %d): no runs", n, maxRun)
		}
		wantRuns := (n + maxRun - 1) / maxRun
		if wantRuns < 1 {
			wantRuns = 1
		}
		if len(runs) != wantRuns {
			t.Fatalf("evenPartition(%d, %d): %d runs, want %d", n, maxRun, len(runs), wantRuns)
		}
		sum, min, max := 0, runs[0], runs[0]
		for _, r := range runs {
			sum += r
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
		if sum != n {
			t.Fatalf("evenPartition(%d, %d): runs sum to %d", n, maxRun, sum)
		}
		if max > maxRun {
			t.Fatalf("evenPartition(%d, %d): run of %d exceeds maxRun", n, maxRun, max)
		}
		if n > 0 && min < 1 {
			t.Fatalf("evenPartition(%d, %d): empty run", n, maxRun)
		}
		if max-min > 1 {
			t.Fatalf("evenPartition(%d, %d): unbalanced runs (min %d, max %d)", n, maxRun, min, max)
		}
	})
}

// FuzzBulkLoad drives packLevel through BulkLoad with arbitrary item counts
// and seeds: after every load the tree must pass its structural Check
// (bounds contain children, leaf depth uniform, fill respected), report the
// right size, and return exactly the loaded payload set.
func FuzzBulkLoad(f *testing.F) {
	f.Add(0, int64(1))
	f.Add(1, int64(2))
	f.Add(6, int64(3))  // exactly fill for MaxEntries=8
	f.Add(7, int64(4))  // one over
	f.Add(36, int64(5)) // one full level
	f.Add(500, int64(6))
	f.Fuzz(func(t *testing.T, n int, seed int64) {
		if n < 0 || n > 2000 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		ct := chronon.Instant(300)
		var items []BulkItem
		model := make(map[Payload]bool, n)
		for i := 0; i < n; i++ {
			items = append(items, BulkItem{Extent: randomExtent(rng, ct), Payload: Payload(i + 1)})
			model[Payload(i+1)] = true
		}
		tr := newTestTree(t, smallConfig())
		if err := tr.BulkLoad(items, ct); err != nil {
			t.Fatalf("BulkLoad(%d items): %v", n, err)
		}
		if tr.Size() != n {
			t.Fatalf("size %d after loading %d", tr.Size(), n)
		}
		if n == 0 {
			return
		}
		if err := tr.Check(ct); err != nil {
			t.Fatalf("check after BulkLoad(%d): %v", n, err)
		}
		// Every payload must be reachable: an all-time overlap query returns
		// the full set (extents are valid at ct, so each overlaps itself).
		got, err := tr.SearchAll(Predicate{Op: OpOverlaps, Query: temporal.Extent{
			TTBegin: 0, TTEnd: chronon.UC, VTBegin: 0, VTEnd: chronon.NOW,
		}}, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !payloadSetEqual(got, model) {
			t.Fatalf("BulkLoad(%d): search returned %d of %d payloads", n, len(got), n)
		}
	})
}
