package grtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/chronon"
	"repro/internal/nodestore"
	"repro/internal/temporal"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.MaxEntries = 8
	c.Bound = temporal.BoundPolicy{TimeParam: 30, AllowHidden: true}
	return c
}

func newTestTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := Create(nodestore.NewMem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// randomExtent draws a valid extent as of ct (mirrors the temporal package's
// generator).
func randomExtent(rng *rand.Rand, ct chronon.Instant) temporal.Extent {
	c := int64(ct)
	vtb := rng.Int63n(c + 1)
	ttb := vtb + rng.Int63n(c-vtb+1)
	switch rng.Intn(6) {
	case 0:
		return temporal.Extent{TTBegin: chronon.Instant(ttb), TTEnd: chronon.UC, VTBegin: chronon.Instant(vtb), VTEnd: chronon.Instant(vtb + rng.Int63n(60))}
	case 1:
		tte := ttb + rng.Int63n(c-ttb+1)
		return temporal.Extent{TTBegin: chronon.Instant(ttb), TTEnd: chronon.Instant(tte), VTBegin: chronon.Instant(vtb), VTEnd: chronon.Instant(vtb + rng.Int63n(60))}
	case 2:
		return temporal.Extent{TTBegin: chronon.Instant(vtb), TTEnd: chronon.UC, VTBegin: chronon.Instant(vtb), VTEnd: chronon.NOW}
	case 3:
		tte := vtb + rng.Int63n(c-vtb+1)
		return temporal.Extent{TTBegin: chronon.Instant(vtb), TTEnd: chronon.Instant(tte), VTBegin: chronon.Instant(vtb), VTEnd: chronon.NOW}
	case 4:
		return temporal.Extent{TTBegin: chronon.Instant(ttb), TTEnd: chronon.UC, VTBegin: chronon.Instant(vtb), VTEnd: chronon.NOW}
	default:
		tte := ttb + rng.Int63n(c-ttb+1)
		return temporal.Extent{TTBegin: chronon.Instant(ttb), TTEnd: chronon.Instant(tte), VTBegin: chronon.Instant(vtb), VTEnd: chronon.NOW}
	}
}

func payloadSetEqual(a []Payload, b map[Payload]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for _, p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

// bruteForce evaluates the predicate over a model map.
func bruteForce(model map[Payload]temporal.Extent, pred Predicate, ct chronon.Instant) map[Payload]bool {
	out := make(map[Payload]bool)
	for p, e := range model {
		if pred.Match(e, ct) {
			out[p] = true
		}
	}
	return out
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ct := chronon.Instant(200)
	tr := newTestTree(t, smallConfig())
	model := make(map[Payload]temporal.Extent)

	for i := 0; i < 400; i++ {
		e := randomExtent(rng, ct)
		p := Payload(i + 1)
		if err := tr.Insert(e, p, ct); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		model[p] = e
	}
	if tr.Size() != 400 {
		t.Fatalf("size %d", tr.Size())
	}
	if err := tr.Check(ct); err != nil {
		t.Fatalf("check after inserts: %v", err)
	}
	if tr.Height() < 2 {
		t.Fatalf("tree should have split: height %d", tr.Height())
	}

	// Check all four operators at several current times against brute force.
	for _, at := range []chronon.Instant{ct, ct + 50, ct + 500} {
		for trial := 0; trial < 30; trial++ {
			q := randomExtent(rng, ct)
			for _, op := range []Op{OpOverlaps, OpEqual, OpContains, OpContainedIn} {
				pred := Predicate{Op: op, Query: q}
				got, err := tr.SearchAll(pred, at)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForce(model, pred, at)
				if !payloadSetEqual(got, want) {
					t.Fatalf("at ct+%d, %v(%v): got %d rows, want %d", at-ct, op, q, len(got), len(want))
				}
			}
		}
	}
}

// TestSearchSeesGrowth: a query region ahead of the data matches only after
// the clock advances and the now-relative regions grow into it.
func TestSearchSeesGrowth(t *testing.T) {
	ct := chronon.Instant(100)
	tr := newTestTree(t, smallConfig())
	// A growing stair starting at day 90.
	ext := temporal.Extent{TTBegin: 90, TTEnd: chronon.UC, VTBegin: 90, VTEnd: chronon.NOW}
	if err := tr.Insert(ext, 1, ct); err != nil {
		t.Fatal(err)
	}
	// Query rectangle at tt,vt ∈ [150, 160].
	q := temporal.Extent{TTBegin: 150, TTEnd: 160, VTBegin: 150, VTEnd: 160}
	got, err := tr.SearchAll(Predicate{Op: OpOverlaps, Query: q}, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("region must not overlap the future query yet")
	}
	got, err = tr.SearchAll(Predicate{Op: OpOverlaps, Query: q}, 155)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("grown region must overlap the query at ct=155")
	}
}

func TestDeleteAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ct := chronon.Instant(150)
	tr := newTestTree(t, smallConfig())
	model := make(map[Payload]temporal.Extent)
	for i := 0; i < 300; i++ {
		e := randomExtent(rng, ct)
		p := Payload(i + 1)
		if err := tr.Insert(e, p, ct); err != nil {
			t.Fatal(err)
		}
		model[p] = e
	}
	// Delete a random half.
	var ids []Payload
	for p := range model {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, p := range ids[:150] {
		removed, _, err := tr.Delete(model[p], p, ct)
		if err != nil {
			t.Fatalf("delete %d: %v", p, err)
		}
		if !removed {
			t.Fatalf("delete %d: not found", p)
		}
		delete(model, p)
	}
	if tr.Size() != 150 {
		t.Fatalf("size after deletes: %d", tr.Size())
	}
	if err := tr.Check(ct); err != nil {
		t.Fatalf("check after deletes: %v", err)
	}
	// Deleting a missing entry reports not-found.
	removed, _, err := tr.Delete(model[ids[200]], 99999, ct)
	if err != nil || removed {
		t.Fatalf("phantom delete: %v %v", removed, err)
	}
	// Survivors still searchable.
	for trial := 0; trial < 20; trial++ {
		q := randomExtent(rng, ct)
		pred := Predicate{Op: OpOverlaps, Query: q}
		got, err := tr.SearchAll(pred, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !payloadSetEqual(got, bruteForce(model, pred, ct)) {
			t.Fatalf("trial %d: post-delete search mismatch", trial)
		}
	}
	// Delete everything; the tree must shrink back to a single leaf root.
	for p, e := range model {
		if ok, _, err := tr.Delete(e, p, ct); err != nil || !ok {
			t.Fatalf("final delete %d: %v %v", p, ok, err)
		}
	}
	if tr.Size() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: size %d height %d", tr.Size(), tr.Height())
	}
	if err := tr.Check(ct); err != nil {
		t.Fatal(err)
	}
}

func TestCheckOverTimeAfterMixedWorkload(t *testing.T) {
	// The structural invariant must keep holding as the clock advances.
	rng := rand.New(rand.NewSource(99))
	clockStart := chronon.Instant(120)
	tr := newTestTree(t, smallConfig())
	model := make(map[Payload]temporal.Extent)
	ct := clockStart
	for i := 0; i < 250; i++ {
		ct++ // time passes between operations
		if rng.Intn(4) != 0 || len(model) == 0 {
			// Insert with proper insertion semantics: TTBegin = ct.
			vtb := ct - chronon.Instant(rng.Int63n(50))
			e := temporal.Extent{TTBegin: ct, TTEnd: chronon.UC, VTBegin: vtb, VTEnd: chronon.NOW}
			if rng.Intn(2) == 0 {
				e.VTEnd = vtb + chronon.Instant(rng.Int63n(40))
			}
			p := Payload(i + 1)
			if err := e.ValidateInsert(ct); err != nil {
				t.Fatal(err)
			}
			if err := tr.Insert(e, p, ct); err != nil {
				t.Fatal(err)
			}
			model[p] = e
		} else {
			// Logical deletion: index delete of old extent + insert of the
			// closed extent (Section 2).
			for p, e := range model {
				if e.TTEnd != chronon.UC {
					continue
				}
				if ok, _, err := tr.Delete(e, p, ct); err != nil || !ok {
					t.Fatalf("delete: %v %v", ok, err)
				}
				closed, err := e.Deleted(ct)
				if err != nil {
					t.Fatal(err)
				}
				if err := tr.Insert(closed, p, ct); err != nil {
					t.Fatal(err)
				}
				model[p] = closed
				break
			}
		}
	}
	for _, at := range []chronon.Instant{ct, ct + 100, ct + 1000} {
		if err := tr.Check(at); err != nil {
			t.Fatalf("check at ct+%d: %v", at-ct, err)
		}
	}
	// And searches remain correct far in the future.
	for trial := 0; trial < 20; trial++ {
		q := randomExtent(rng, ct)
		pred := Predicate{Op: OpOverlaps, Query: q}
		at := ct + 500
		got, err := tr.SearchAll(pred, at)
		if err != nil {
			t.Fatal(err)
		}
		if !payloadSetEqual(got, bruteForce(model, pred, at)) {
			t.Fatalf("future search mismatch (trial %d)", trial)
		}
	}
}

func TestBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ct := chronon.Instant(300)
	var items []BulkItem
	model := make(map[Payload]temporal.Extent)
	for i := 0; i < 500; i++ {
		e := randomExtent(rng, ct)
		p := Payload(i + 1)
		items = append(items, BulkItem{Extent: e, Payload: p})
		model[p] = e
	}
	tr := newTestTree(t, smallConfig())
	if err := tr.BulkLoad(items, ct); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 500 {
		t.Fatalf("size %d", tr.Size())
	}
	if err := tr.Check(ct); err != nil {
		t.Fatalf("check after bulk load: %v", err)
	}
	for trial := 0; trial < 25; trial++ {
		q := randomExtent(rng, ct)
		pred := Predicate{Op: OpOverlaps, Query: q}
		got, err := tr.SearchAll(pred, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !payloadSetEqual(got, bruteForce(model, pred, ct)) {
			t.Fatalf("bulk search mismatch (trial %d)", trial)
		}
	}
	// Bulk load into a non-empty tree fails.
	if err := tr.BulkLoad(items, ct); err == nil {
		t.Fatal("bulk load into non-empty tree must fail")
	}
	// Empty bulk load is a no-op.
	tr2 := newTestTree(t, smallConfig())
	if err := tr2.BulkLoad(nil, ct); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	store := nodestore.NewMem()
	cfg := smallConfig()
	tr, err := Create(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct := chronon.Instant(100)
	rng := rand.New(rand.NewSource(3))
	model := make(map[Payload]temporal.Extent)
	for i := 0; i < 120; i++ {
		e := randomExtent(rng, ct)
		p := Payload(i + 1)
		if err := tr.Insert(e, p, ct); err != nil {
			t.Fatal(err)
		}
		model[p] = e
	}
	tr2, err := Open(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Size() != 120 || tr2.Height() != tr.Height() {
		t.Fatalf("reopened tree: size %d height %d", tr2.Size(), tr2.Height())
	}
	if err := tr2.Check(ct); err != nil {
		t.Fatal(err)
	}
	pred := Predicate{Op: OpOverlaps, Query: temporal.Extent{TTBegin: 0, TTEnd: chronon.UC, VTBegin: 0, VTEnd: chronon.NOW}}
	got, err := tr2.SearchAll(pred, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !payloadSetEqual(got, bruteForce(model, pred, ct)) {
		t.Fatal("reopened search mismatch")
	}
	// Open of a store without a tree fails.
	if _, err := Open(nodestore.NewMem(), cfg); err == nil {
		t.Fatal("open of empty store must fail")
	}
}

func TestCursorRestartOnCondense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ct := chronon.Instant(150)
	cfg := smallConfig()
	cfg.DeletePolicy = RestartOnCondense
	tr := newTestTree(t, cfg)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(randomExtent(rng, ct), Payload(i+1), ct); err != nil {
			t.Fatal(err)
		}
	}
	everything := temporal.Extent{TTBegin: 0, TTEnd: chronon.UC, VTBegin: 0, VTEnd: chronon.NOW}
	removed, restarts, err := tr.DeleteWhere(Predicate{Op: OpOverlaps, Query: everything}, ct)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 200 {
		t.Fatalf("DeleteWhere removed %d of 200", removed)
	}
	if restarts == 0 {
		t.Fatal("mass deletion must condense and restart the cursor at least once")
	}
	if tr.Size() != 0 {
		t.Fatalf("size %d", tr.Size())
	}
	if err := tr.Check(ct); err != nil {
		t.Fatal(err)
	}
}

func TestDeletePolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ct := chronon.Instant(150)
	everything := temporal.Extent{TTBegin: 0, TTEnd: chronon.UC, VTBegin: 0, VTEnd: chronon.NOW}
	restartCounts := map[DeletePolicy]int{}
	for _, pol := range []DeletePolicy{RestartOnCondense, RestartAlways, NoCondense} {
		cfg := smallConfig()
		cfg.DeletePolicy = pol
		tr := newTestTree(t, cfg)
		r := rand.New(rand.NewSource(9))
		for i := 0; i < 150; i++ {
			if err := tr.Insert(randomExtent(r, ct), Payload(i+1), ct); err != nil {
				t.Fatal(err)
			}
		}
		removed, restarts, err := tr.DeleteWhere(Predicate{Op: OpOverlaps, Query: everything}, ct)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if removed != 150 {
			t.Fatalf("%v: removed %d", pol, removed)
		}
		if err := tr.Check(ct); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		restartCounts[pol] = restarts
		if pol.String() == "" {
			t.Fatal("policy string")
		}
	}
	if restartCounts[RestartAlways] < restartCounts[RestartOnCondense] {
		t.Fatalf("restart-always (%d) must restart at least as often as restart-on-condense (%d)",
			restartCounts[RestartAlways], restartCounts[RestartOnCondense])
	}
	_ = rng
}

func TestCursorResetAndRescan(t *testing.T) {
	ct := chronon.Instant(100)
	tr := newTestTree(t, smallConfig())
	for i := 0; i < 50; i++ {
		e := temporal.Extent{TTBegin: chronon.Instant(10 + i), TTEnd: chronon.UC, VTBegin: chronon.Instant(10 + i), VTEnd: chronon.NOW}
		if err := tr.Insert(e, Payload(i+1), ct); err != nil {
			t.Fatal(err)
		}
	}
	everything := temporal.Extent{TTBegin: 0, TTEnd: chronon.UC, VTBegin: 0, VTEnd: chronon.NOW}
	cur, err := tr.Search(Predicate{Op: OpOverlaps, Query: everything}, ct)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 50 {
		t.Fatalf("first scan: %d", count)
	}
	// grt_rescan: Reset rewinds and produces everything again.
	cur.Reset()
	count = 0
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 50 {
		t.Fatalf("rescan: %d", count)
	}
}

func TestStatsAndDump(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ct := chronon.Instant(150)
	tr := newTestTree(t, smallConfig())
	for i := 0; i < 150; i++ {
		if err := tr.Insert(randomExtent(rng, ct), Payload(i+1), ct); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tr.Stats(ct, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.LeafEntries != 150 || st.Height != tr.Height() || st.Nodes < 3 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.PerLevel) != st.Height {
		t.Fatalf("per-level stats: %d levels, height %d", len(st.PerLevel), st.Height)
	}
	if st.DeadSpaceRatio < 0 || st.DeadSpaceRatio > 1 {
		t.Fatalf("dead space ratio %v", st.DeadSpaceRatio)
	}
	dump, err := tr.Dump(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) == 0 {
		t.Fatal("empty dump")
	}
}

func TestInvalidInputs(t *testing.T) {
	tr := newTestTree(t, smallConfig())
	bad := temporal.Extent{TTBegin: 10, TTEnd: 5, VTBegin: 0, VTEnd: 1}
	if err := tr.Insert(bad, 1, 100); err == nil {
		t.Fatal("invalid extent must not insert")
	}
	if _, err := tr.Search(Predicate{Op: OpOverlaps, Query: bad}, 100); err == nil {
		t.Fatal("invalid query must fail")
	}
	for _, op := range []Op{OpOverlaps, OpEqual, OpContains, OpContainedIn, Op(99)} {
		_ = op.String()
	}
}

func TestFullCapacityNodes(t *testing.T) {
	// Default capacity: entries per 4 KB page.
	if Capacity < 80 {
		t.Fatalf("capacity %d unexpectedly small", Capacity)
	}
	cfg := DefaultConfig()
	tr := newTestTree(t, cfg)
	ct := chronon.Instant(500)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 3*Capacity; i++ {
		if err := tr.Insert(randomExtent(rng, ct), Payload(i+1), ct); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(ct); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatal("default-capacity tree should have split")
	}
}
