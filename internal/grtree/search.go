package grtree

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/nodestore"
	"repro/internal/temporal"
)

// Op is a query predicate operator — the strategy functions of the GR-tree
// operator class (Section 5.2): Overlaps, Equal, Contains, ContainedIn.
type Op int

const (
	// OpOverlaps finds extents whose regions share a cell with the query.
	OpOverlaps Op = iota
	// OpEqual finds extents whose regions equal the query region.
	OpEqual
	// OpContains finds extents whose regions contain the query region.
	OpContains
	// OpContainedIn finds extents whose regions lie inside the query region.
	OpContainedIn
)

func (o Op) String() string {
	switch o {
	case OpOverlaps:
		return "Overlaps"
	case OpEqual:
		return "Equal"
	case OpContains:
		return "Contains"
	case OpContainedIn:
		return "ContainedIn"
	}
	return "?"
}

// leafTest evaluates the predicate against a leaf region — the strategy
// function proper, operating on exact geometry.
func leafTest(op Op, entry, query temporal.Region, ct chronon.Instant) bool {
	switch op {
	case OpOverlaps:
		return entry.Overlaps(query, ct)
	case OpEqual:
		return entry.Equal(query, ct)
	case OpContains:
		return entry.Contains(query, ct)
	case OpContainedIn:
		return entry.ContainedIn(query, ct)
	}
	return false
}

// internalTest is the pruning predicate for internal-node bounding regions —
// the "internal" companion of each strategy function that Section 5.2
// discusses (OverlapsInternal() etc., hard-coded in the prototype): it must
// hold whenever any descendant leaf could satisfy the strategy function.
func internalTest(op Op, bound, query temporal.Region, ct chronon.Instant) bool {
	switch op {
	case OpOverlaps, OpContainedIn:
		// A leaf overlapping (or inside) the query overlaps it, so its
		// ancestors' bounds do too.
		return bound.Overlaps(query, ct)
	case OpEqual, OpContains:
		// A leaf equal to (or containing) the query contains it, so its
		// ancestors' bounds contain it as well.
		return bound.Contains(query, ct)
	}
	return false
}

// Predicate is a search qualification: an operator and a query extent.
type Predicate struct {
	Op    Op
	Query temporal.Extent
}

// Match evaluates the predicate against an extent at ct (the non-indexed
// fallback the server uses when the optimizer skips the index).
func (p Predicate) Match(e temporal.Extent, ct chronon.Instant) bool {
	return leafTest(p.Op, e.Region(), p.Query.Region(), ct)
}

// Cursor stores a query predicate and tree-traversal information; qualifying
// entries are retrieved by calling Next (Appendix A). Node contents are
// snapshotted as visited, so in-node deletions by the owning scan are safe;
// structural changes (splits, condensation) bump the tree epoch and make the
// cursor restart, skipping already-returned entries (Section 5.5).
type Cursor struct {
	t     *Tree
	match Matcher
	ct    chronon.Instant

	stack    []cursorFrame
	epoch    uint64
	started  bool
	returned map[Payload]bool
	restarts int
}

type cursorFrame struct {
	entries []Entry
	level   int
	idx     int
}

// Search creates a cursor for the predicate as of current time ct
// (Tree.search() of Appendix A).
func (t *Tree) Search(pred Predicate, ct chronon.Instant) (*Cursor, error) {
	if !pred.Query.Valid() {
		return nil, fmt.Errorf("grtree: invalid query extent %v", pred.Query)
	}
	return t.SearchMatcher(pred, ct), nil
}

// Restarts reports how often the cursor restarted due to tree condensation
// (experiment P4's measurement).
func (c *Cursor) Restarts() int { return c.restarts }

// Reset rewinds the cursor, forgetting returned-entry bookkeeping
// (grt_rescan).
func (c *Cursor) Reset() {
	c.stack = nil
	c.started = false
	c.returned = make(map[Payload]bool)
	c.epoch = c.t.epoch
	c.restarts = 0
}

// restart re-seeds the traversal after a structural change, keeping the
// returned set so qualifying entries are not produced twice.
func (c *Cursor) restart() error {
	c.stack = nil
	c.started = false
	c.epoch = c.t.epoch
	c.restarts++
	return nil
}

func (c *Cursor) push(id nodestore.NodeID) error {
	n, err := c.t.readNode(id)
	if err != nil {
		return err
	}
	c.stack = append(c.stack, cursorFrame{entries: n.entries, level: n.level})
	return nil
}

// Next returns the next qualifying entry (Cursor.next() of Appendix A).
// ok is false when the scan is exhausted.
func (c *Cursor) Next() (Entry, bool, error) {
	if c.epoch != c.t.epoch {
		if err := c.restart(); err != nil {
			return Entry{}, false, err
		}
	}
	if !c.started {
		c.started = true
		if err := c.push(c.t.root); err != nil {
			return Entry{}, false, err
		}
	}
	for len(c.stack) > 0 {
		frame := &c.stack[len(c.stack)-1]
		if frame.idx >= len(frame.entries) {
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		e := frame.entries[frame.idx]
		frame.idx++
		if frame.level == 0 {
			if c.match.LeafMatch(e.Region, c.ct) && !c.returned[e.Payload()] {
				c.returned[e.Payload()] = true
				return e, true, nil
			}
			continue
		}
		if c.match.InternalMatch(e.Region, c.ct) {
			if err := c.push(e.Child()); err != nil {
				return Entry{}, false, err
			}
			// Re-check epoch: push read a node; if the tree changed between
			// frames (scan-interleaved deletes), restart cleanly.
			if c.epoch != c.t.epoch {
				if err := c.restart(); err != nil {
					return Entry{}, false, err
				}
				if err := c.push(c.t.root); err != nil {
					return Entry{}, false, err
				}
				c.started = true
			}
		}
	}
	return Entry{}, false, nil
}

// NextBatch fills dst with the next qualifying entries — the blade's
// am_getmulti service. The matches of each visited leaf node are drained in
// one pass over its snapshot (instead of re-entering the traversal per
// entry); the slow path delegates to Next for descent, restart and
// returned-entry bookkeeping. It returns the number filled; fewer than
// len(dst) means the scan is exhausted.
func (c *Cursor) NextBatch(dst []Entry) (int, error) {
	n := 0
	for n < len(dst) {
		// Fast path: the top of the stack is a leaf frame and the tree has
		// not changed shape — drain its matches in one visit.
		if len(c.stack) > 0 && c.epoch == c.t.epoch {
			frame := &c.stack[len(c.stack)-1]
			if frame.level == 0 {
				for frame.idx < len(frame.entries) && n < len(dst) {
					e := frame.entries[frame.idx]
					frame.idx++
					if c.match.LeafMatch(e.Region, c.ct) && !c.returned[e.Payload()] {
						c.returned[e.Payload()] = true
						dst[n] = e
						n++
					}
				}
				if n == len(dst) {
					return n, nil
				}
				// Frame exhausted; fall through to Next to pop and descend.
			}
		}
		e, ok, err := c.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		dst[n] = e
		n++
	}
	return n, nil
}

// SearchAll runs the predicate to completion and returns the payloads
// (convenience for tests and benchmarks).
func (t *Tree) SearchAll(pred Predicate, ct chronon.Instant) ([]Payload, error) {
	cur, err := t.Search(pred, ct)
	if err != nil {
		return nil, err
	}
	var out []Payload
	for {
		e, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, e.Payload())
	}
}
