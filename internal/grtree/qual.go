package grtree

import (
	"fmt"

	"repro/internal/chronon"
	"repro/internal/temporal"
)

// Matcher generalises the cursor's predicate: LeafMatch is the exact
// strategy test on a data region; InternalMatch is the pruning test on a
// bounding region and must hold whenever any descendant leaf could match.
type Matcher interface {
	LeafMatch(r temporal.Region, ct chronon.Instant) bool
	InternalMatch(bound temporal.Region, ct chronon.Instant) bool
}

// LeafMatch implements Matcher for a single predicate.
func (p Predicate) LeafMatch(r temporal.Region, ct chronon.Instant) bool {
	return leafTest(p.Op, r, p.Query.Region(), ct)
}

// InternalMatch implements Matcher for a single predicate.
func (p Predicate) InternalMatch(bound temporal.Region, ct chronon.Instant) bool {
	return internalTest(p.Op, bound, p.Query.Region(), ct)
}

// Compound is an AND/OR tree over predicates — the blade-side decomposition
// of a complex qualification descriptor (Section 6.3: "the logic for how to
// break a complex qualification ... into simple ones and ... how to invoke
// appropriate strategy functions").
type Compound struct {
	And      bool // true = conjunction, false = disjunction
	Children []*Compound
	Pred     *Predicate // leaf when non-nil
}

// Leaf wraps one predicate.
func Leaf(p Predicate) *Compound { return &Compound{Pred: &p} }

// AndOf conjoins compounds.
func AndOf(cs ...*Compound) *Compound { return &Compound{And: true, Children: cs} }

// OrOf disjoins compounds.
func OrOf(cs ...*Compound) *Compound { return &Compound{And: false, Children: cs} }

// Validate checks every query extent.
func (c *Compound) Validate() error {
	if c == nil {
		return fmt.Errorf("grtree: nil qualification")
	}
	if c.Pred != nil {
		if !c.Pred.Query.Valid() {
			return fmt.Errorf("grtree: invalid query extent %v", c.Pred.Query)
		}
		return nil
	}
	if len(c.Children) == 0 {
		return fmt.Errorf("grtree: empty boolean qualification")
	}
	for _, ch := range c.Children {
		if err := ch.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// LeafMatch implements Matcher.
func (c *Compound) LeafMatch(r temporal.Region, ct chronon.Instant) bool {
	if c.Pred != nil {
		return c.Pred.LeafMatch(r, ct)
	}
	for _, ch := range c.Children {
		m := ch.LeafMatch(r, ct)
		if c.And && !m {
			return false
		}
		if !c.And && m {
			return true
		}
	}
	return c.And
}

// InternalMatch implements Matcher: a leaf satisfying an AND satisfies every
// conjunct, so every conjunct's internal test must hold on the bound; for an
// OR, some disjunct's internal test must hold.
func (c *Compound) InternalMatch(bound temporal.Region, ct chronon.Instant) bool {
	if c.Pred != nil {
		return c.Pred.InternalMatch(bound, ct)
	}
	for _, ch := range c.Children {
		m := ch.InternalMatch(bound, ct)
		if c.And && !m {
			return false
		}
		if !c.And && m {
			return true
		}
	}
	return c.And
}

// SearchMatcher creates a cursor over an arbitrary matcher (compound
// qualifications).
func (t *Tree) SearchMatcher(m Matcher, ct chronon.Instant) *Cursor {
	return &Cursor{
		t: t, match: m, ct: ct,
		epoch: t.epoch, returned: make(map[Payload]bool),
	}
}
