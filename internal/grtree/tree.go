package grtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/chronon"
	"repro/internal/nodestore"
	"repro/internal/temporal"
)

// DeletePolicy selects the Section 5.5 deletion strategy.
type DeletePolicy int

const (
	// RestartOnCondense is the paper's compromise: scanning restarts only
	// when the tree is actually condensed.
	RestartOnCondense DeletePolicy = iota
	// RestartAlways conservatively restarts after every deletion.
	RestartAlways
	// NoCondense never re-inserts: underfull nodes are tolerated (empty
	// nodes are still unlinked), trading search performance for scan
	// availability.
	NoCondense
)

func (p DeletePolicy) String() string {
	switch p {
	case RestartAlways:
		return "restart-always"
	case NoCondense:
		return "no-condense"
	default:
		return "restart-on-condense"
	}
}

// Config tunes a GR-tree.
type Config struct {
	// Bound is the bounding-region policy (time parameter, hidden bounds).
	Bound temporal.BoundPolicy
	// MaxEntries caps node fanout (default and maximum: Capacity). Tests
	// use small values to force deep trees.
	MaxEntries int
	// MinFillPct is the underflow threshold in percent (default 40).
	MinFillPct int
	// ReinsertPct is the forced-reinsertion fraction in percent on first
	// overflow per level (R*; default 30, 0 disables).
	ReinsertPct int
	// DeletePolicy selects the Section 5.5 strategy.
	DeletePolicy DeletePolicy
}

// DefaultConfig mirrors the prototype: R* parameters with the default
// bounding policy.
func DefaultConfig() Config {
	return Config{
		Bound:       temporal.DefaultBoundPolicy,
		MaxEntries:  Capacity,
		MinFillPct:  40,
		ReinsertPct: 30,
	}
}

func (c *Config) normalise() {
	if c.MaxEntries <= 0 || c.MaxEntries > Capacity {
		c.MaxEntries = Capacity
	}
	if c.MaxEntries < 4 {
		c.MaxEntries = 4
	}
	if c.MinFillPct <= 0 || c.MinFillPct > 50 {
		c.MinFillPct = 40
	}
	if c.ReinsertPct < 0 || c.ReinsertPct > 50 {
		c.ReinsertPct = 30
	}
	if c.Bound.TimeParam <= 0 {
		c.Bound = temporal.DefaultBoundPolicy
	}
}

// Tree is a GR-tree over a node store. Mutating methods are not safe for
// concurrent use; the engine serialises access through the sbspace
// large-object locks (Section 5.3), exactly as the paper's DataBlade had to.
// Read-only traversal is additionally protected by a per-node latch table so
// a parallel scan's workers may descend concurrently (ParallelScan).
type Tree struct {
	store   nodestore.Store
	cfg     Config
	latches *nodestore.LatchTable
	root    nodestore.NodeID
	height  int // number of levels; a lone leaf root has height 1
	size    int // live leaf entries
	epoch   uint64
}

const metaMagic = 0x47525452 // "GRTR"

// Create initialises a new, empty GR-tree in the store.
func Create(store nodestore.Store, cfg Config) (*Tree, error) {
	cfg.normalise()
	t := &Tree{store: store, cfg: cfg, latches: nodestore.NewLatchTable(), height: 1}
	rootID, err := store.Alloc()
	if err != nil {
		return nil, err
	}
	t.root = rootID
	if err := t.writeNode(&node{id: rootID, leaf: true, level: 0}); err != nil {
		return nil, err
	}
	if err := t.saveMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing GR-tree from the store.
func Open(store nodestore.Store, cfg Config) (*Tree, error) {
	cfg.normalise()
	meta, err := store.Meta()
	if err != nil {
		return nil, err
	}
	if len(meta) < 32 || binary.BigEndian.Uint32(meta[0:4]) != metaMagic {
		return nil, fmt.Errorf("grtree: store holds no GR-tree")
	}
	t := &Tree{store: store, cfg: cfg, latches: nodestore.NewLatchTable()}
	t.root = nodestore.NodeID(binary.BigEndian.Uint64(meta[8:16]))
	t.height = int(binary.BigEndian.Uint64(meta[16:24]))
	t.size = int(binary.BigEndian.Uint64(meta[24:32]))
	return t, nil
}

func (t *Tree) saveMeta() error {
	meta := make([]byte, 32)
	binary.BigEndian.PutUint32(meta[0:4], metaMagic)
	binary.BigEndian.PutUint64(meta[8:16], uint64(t.root))
	binary.BigEndian.PutUint64(meta[16:24], uint64(t.height))
	binary.BigEndian.PutUint64(meta[24:32], uint64(t.size))
	return t.store.SetMeta(meta)
}

// Size returns the number of live leaf entries.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Epoch returns the structural-modification counter; cursors use it to
// detect that the tree was condensed or reorganised under them.
func (t *Tree) Epoch() uint64 { return t.epoch }

// Store exposes the underlying node store (statistics).
func (t *Tree) Store() nodestore.Store { return t.store }

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

func (t *Tree) minFill() int {
	m := t.cfg.MaxEntries * t.cfg.MinFillPct / 100
	if m < 1 {
		m = 1
	}
	return m
}

// Insert adds an extent with its payload as of current time ct. The extent
// must be one of the six valid combinations (Figure 2); the caller enforces
// the stricter insertion constraints of Section 2 (grt_insert receives rows
// the server already accepted).
func (t *Tree) Insert(ext temporal.Extent, payload Payload, ct chronon.Instant) error {
	if !ext.Valid() {
		return fmt.Errorf("grtree: invalid extent %v", ext)
	}
	e := Entry{Region: ext.Region(), Ref: uint64(payload)}
	if err := t.insertAtLevel(e, 0, ct, make(map[int]bool)); err != nil {
		return err
	}
	t.size++
	return t.saveMeta()
}

// pathStep records one step of a root-to-target descent.
type pathStep struct {
	n   *node
	idx int // child index taken in n
}

// insertAtLevel inserts an entry at the given level (0 = leaf), applying
// R* overflow treatment (forced reinsertion once per level per top-level
// insertion, then splitting).
func (t *Tree) insertAtLevel(e Entry, level int, ct chronon.Instant, reinserted map[int]bool) error {
	// Descend to a node at `level`, recording the path.
	var path []pathStep
	n, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	for n.level > level {
		idx := t.chooseSubtree(n, e.Region, ct)
		path = append(path, pathStep{n: n, idx: idx})
		child, err := t.readNode(n.entries[idx].Child())
		if err != nil {
			return err
		}
		n = child
	}
	n.entries = append(n.entries, e)

	// Overflow treatment, bubbling up the path.
	for {
		if len(n.entries) <= t.cfg.MaxEntries {
			if err := t.writeNode(n); err != nil {
				return err
			}
			return t.adjustPath(path, n, ct)
		}
		isRoot := n.id == t.root
		if !isRoot && !reinserted[n.level] && t.cfg.ReinsertPct > 0 {
			reinserted[n.level] = true
			return t.forcedReinsert(path, n, ct, reinserted)
		}
		left, right, err := t.split(n, ct)
		if err != nil {
			return err
		}
		t.epoch++
		if isRoot {
			return t.growRoot(left, right, ct)
		}
		// Replace the parent's entry for n with the two halves.
		parent := path[len(path)-1].n
		idx := path[len(path)-1].idx
		path = path[:len(path)-1]
		parent.entries[idx] = Entry{Region: t.bound(left, ct), Ref: uint64(left.id)}
		parent.entries = append(parent.entries, Entry{Region: t.bound(right, ct), Ref: uint64(right.id)})
		n = parent
	}
}

// adjustPath rewrites bounds along the recorded path after n changed.
func (t *Tree) adjustPath(path []pathStep, n *node, ct chronon.Instant) error {
	child := n
	for i := len(path) - 1; i >= 0; i-- {
		step := path[i]
		nb := t.bound(child, ct)
		step.n.entries[step.idx] = Entry{Region: nb, Ref: uint64(child.id)}
		if err := t.writeNode(step.n); err != nil {
			return err
		}
		child = step.n
	}
	return nil
}

// growRoot installs a new root over the two halves of a root split.
func (t *Tree) growRoot(left, right *node, ct chronon.Instant) error {
	id, err := t.store.Alloc()
	if err != nil {
		return err
	}
	root := &node{id: id, leaf: false, level: left.level + 1, entries: []Entry{
		{Region: t.bound(left, ct), Ref: uint64(left.id)},
		{Region: t.bound(right, ct), Ref: uint64(right.id)},
	}}
	if err := t.writeNode(root); err != nil {
		return err
	}
	t.root = id
	t.height++
	return t.saveMeta()
}

// chooseSubtree picks the child of n to descend into for region r: at the
// level just above the leaves it minimises overlap enlargement; higher up,
// area enlargement — both evaluated at the time-parameter horizon
// (Section 3: "a time parameter, capturing the development over time of
// entries, is introduced in these algorithms").
func (t *Tree) chooseSubtree(n *node, r temporal.Region, ct chronon.Instant) int {
	type cand struct {
		idx     int
		enlarge float64
		area    float64
		union   temporal.Region
	}
	horizon := ct + chronon.Instant(t.cfg.Bound.TimeParam)
	cands := make([]cand, len(n.entries))
	for i, e := range n.entries {
		d, u := e.Region.Enlargement(r, ct, t.cfg.Bound)
		cands[i] = cand{idx: i, enlarge: d, area: e.Region.Resolve(horizon).Area(), union: u}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].enlarge != cands[b].enlarge {
			return cands[a].enlarge < cands[b].enlarge
		}
		return cands[a].area < cands[b].area
	})
	if n.level != 1 {
		return cands[0].idx
	}
	// Leaf parent: among the (up to) 16 least-enlarging candidates, pick the
	// one whose enlargement increases overlap with siblings the least (R*).
	k := len(cands)
	if k > 16 {
		k = 16
	}
	shapes := make([]temporal.Shape, len(n.entries))
	for i, e := range n.entries {
		shapes[i] = e.Region.Resolve(horizon)
	}
	best := 0
	bestOverlap := math.Inf(1)
	for c := 0; c < k; c++ {
		i := cands[c].idx
		ns := cands[c].union.Resolve(horizon)
		var delta float64
		for j := range n.entries {
			if j == i {
				continue
			}
			delta += ns.IntersectionArea(shapes[j]) - shapes[i].IntersectionArea(shapes[j])
		}
		if delta < bestOverlap {
			bestOverlap = delta
			best = c
		}
	}
	return cands[best].idx
}

// split performs the R* topological split adapted to growing regions: the
// axis (transaction time or valid time) is chosen by minimum margin sum over
// the candidate distributions, the distribution by minimum overlap area then
// minimum total area, all evaluated at the time-parameter horizon. The left
// half reuses n's node id; the right half gets a fresh node.
func (t *Tree) split(n *node, ct chronon.Instant) (*node, *node, error) {
	horizon := ct + chronon.Instant(t.cfg.Bound.TimeParam)
	m := t.minFill()
	entries := n.entries
	M := len(entries)

	type sorting struct {
		axis int // 0 = TT, 1 = VT
		keys []float64
		perm []int
	}
	mkSorting := func(axis int, key func(temporal.Shape) float64) sorting {
		s := sorting{axis: axis, perm: make([]int, M), keys: make([]float64, M)}
		for i := range entries {
			s.perm[i] = i
			s.keys[i] = key(entries[i].Region.Resolve(horizon))
		}
		sort.SliceStable(s.perm, func(a, b int) bool { return s.keys[s.perm[a]] < s.keys[s.perm[b]] })
		return s
	}
	sortings := []sorting{
		mkSorting(0, func(s temporal.Shape) float64 { return float64(s.TTBegin) }),
		mkSorting(0, func(s temporal.Shape) float64 { return float64(s.TTEnd) }),
		mkSorting(1, func(s temporal.Shape) float64 { return float64(s.VTBegin) }),
		mkSorting(1, func(s temporal.Shape) float64 { return float64(s.VTEnd) }),
	}

	boundOf := func(idxs []int) temporal.Region {
		regs := make([]temporal.Region, len(idxs))
		for i, ix := range idxs {
			regs[i] = entries[ix].Region
		}
		return temporal.Bound(regs, ct, t.cfg.Bound)
	}

	// Choose the split axis by minimum margin sum.
	axisMargin := [2]float64{}
	for _, s := range sortings {
		for k := m; k <= M-m; k++ {
			b1 := boundOf(s.perm[:k]).Resolve(horizon)
			b2 := boundOf(s.perm[k:]).Resolve(horizon)
			axisMargin[s.axis] += b1.Margin() + b2.Margin()
		}
	}
	axis := 0
	if axisMargin[1] < axisMargin[0] {
		axis = 1
	}

	// Choose the distribution on that axis by min overlap, then min area.
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	var bestPerm []int
	bestK := -1
	for _, s := range sortings {
		if s.axis != axis {
			continue
		}
		for k := m; k <= M-m; k++ {
			sh1 := boundOf(s.perm[:k]).Resolve(horizon)
			sh2 := boundOf(s.perm[k:]).Resolve(horizon)
			ov := sh1.IntersectionArea(sh2)
			ar := sh1.Area() + sh2.Area()
			if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
				bestOverlap, bestArea = ov, ar
				bestPerm, bestK = s.perm, k
			}
		}
	}
	if bestK < 0 {
		return nil, nil, fmt.Errorf("grtree: split of node %d found no distribution", n.id)
	}

	leftEntries := make([]Entry, 0, bestK)
	rightEntries := make([]Entry, 0, M-bestK)
	for _, ix := range bestPerm[:bestK] {
		leftEntries = append(leftEntries, entries[ix])
	}
	for _, ix := range bestPerm[bestK:] {
		rightEntries = append(rightEntries, entries[ix])
	}

	left := &node{id: n.id, leaf: n.leaf, level: n.level, entries: leftEntries}
	rid, err := t.store.Alloc()
	if err != nil {
		return nil, nil, err
	}
	right := &node{id: rid, leaf: n.leaf, level: n.level, entries: rightEntries}
	if err := t.writeNode(left); err != nil {
		return nil, nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

// forcedReinsert removes the ReinsertPct entries farthest (at the horizon)
// from the node's centre, repairs bounds, and re-inserts them from the top
// (R* forced reinsertion, close-reinsert order).
func (t *Tree) forcedReinsert(path []pathStep, n *node, ct chronon.Instant, reinserted map[int]bool) error {
	horizon := ct + chronon.Instant(t.cfg.Bound.TimeParam)
	k := len(n.entries) * t.cfg.ReinsertPct / 100
	if k < 1 {
		k = 1
	}
	nb := t.bound(n, ct).Resolve(horizon).BoundingBox()
	cx := float64(nb.TTBegin+nb.TTEnd) / 2
	cy := float64(nb.VTBegin+nb.VTEnd) / 2
	type dist struct {
		idx int
		d   float64
	}
	ds := make([]dist, len(n.entries))
	for i, e := range n.entries {
		bb := e.Region.Resolve(horizon).BoundingBox()
		ex := float64(bb.TTBegin+bb.TTEnd) / 2
		ey := float64(bb.VTBegin+bb.VTEnd) / 2
		ds[i] = dist{idx: i, d: (ex-cx)*(ex-cx) + (ey-cy)*(ey-cy)}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
	removed := make([]Entry, 0, k)
	drop := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		removed = append(removed, n.entries[ds[i].idx])
		drop[ds[i].idx] = true
	}
	kept := n.entries[:0:0]
	for i, e := range n.entries {
		if !drop[i] {
			kept = append(kept, e)
		}
	}
	n.entries = kept
	if err := t.writeNode(n); err != nil {
		return err
	}
	if err := t.adjustPath(path, n, ct); err != nil {
		return err
	}
	t.epoch++
	// Close reinsert: nearest first.
	for i := len(removed) - 1; i >= 0; i-- {
		if err := t.insertAtLevel(removed[i], n.level, ct, reinserted); err != nil {
			return err
		}
	}
	return nil
}
