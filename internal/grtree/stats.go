package grtree

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/chronon"
	"repro/internal/nodestore"
	"repro/internal/temporal"
)

// LevelStats aggregates one tree level (level 0 = leaves).
type LevelStats struct {
	Level   int
	Nodes   int
	Entries int
	// Area is the total area of the level's node bounding regions at the
	// measurement time.
	Area float64
	// Overlap is the total pairwise intersection area between sibling
	// bounding regions at the level — the "overlap" goodness measure of
	// Section 3.
	Overlap float64
}

// TreeStats summarises the tree structure and its goodness measures.
type TreeStats struct {
	Height      int
	Nodes       int
	LeafEntries int
	PerLevel    []LevelStats
	// DeadSpaceRatio estimates the fraction of leaf-bound area not covered
	// by any data region (Section 3's "dead space"), when sampled.
	DeadSpaceRatio float64
}

// Stats walks the tree and computes structure and overlap statistics at ct.
// deadSpaceSamples > 0 additionally estimates the dead-space ratio by Monte
// Carlo sampling with the given seed.
func (t *Tree) Stats(ct chronon.Instant, deadSpaceSamples int, seed int64) (TreeStats, error) {
	st := TreeStats{Height: t.height}
	levels := make(map[int]*LevelStats)
	levelBounds := make(map[int][]temporal.Shape)
	var leafShapes []temporal.Shape

	var walk func(id uint64) error
	walk = func(id uint64) error {
		n, err := t.readNode(nodeID(id))
		if err != nil {
			return err
		}
		st.Nodes++
		ls := levels[n.level]
		if ls == nil {
			ls = &LevelStats{Level: n.level}
			levels[n.level] = ls
		}
		ls.Nodes++
		ls.Entries += len(n.entries)
		if n.leaf {
			st.LeafEntries += len(n.entries)
			for _, e := range n.entries {
				leafShapes = append(leafShapes, e.Region.Resolve(ct))
			}
			return nil
		}
		for _, e := range n.entries {
			levelBounds[n.level-1] = append(levelBounds[n.level-1], e.Region.Resolve(ct))
			if err := walk(e.Ref); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(uint64(t.root)); err != nil {
		return st, err
	}

	// Root bound (level height-1) is the bound over the root's entries.
	rootN, err := t.readNode(t.root)
	if err != nil {
		return st, err
	}
	rootBound := t.bound(rootN, ct).Resolve(ct)
	levelBounds[rootN.level] = []temporal.Shape{rootBound}

	for lvl, ls := range levels {
		for _, s := range levelBounds[lvl] {
			ls.Area += s.Area()
		}
		bs := levelBounds[lvl]
		for i := 0; i < len(bs); i++ {
			for j := i + 1; j < len(bs); j++ {
				ls.Overlap += bs[i].IntersectionArea(bs[j])
			}
		}
		st.PerLevel = append(st.PerLevel, *ls)
	}
	sort.Slice(st.PerLevel, func(a, b int) bool { return st.PerLevel[a].Level < st.PerLevel[b].Level })

	if deadSpaceSamples > 0 && !rootBound.Empty() {
		st.DeadSpaceRatio = deadSpace(rootBound, levelBounds[0], leafShapes, deadSpaceSamples, seed)
	}
	return st, nil
}

// deadSpace estimates the fraction of total leaf-bound area that is covered
// by some leaf node's bound but by no data region.
func deadSpace(root temporal.Shape, leafBounds, dataShapes []temporal.Shape, samples int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	bb := root.BoundingBox()
	w := bb.TTEnd - bb.TTBegin + 1
	h := bb.VTEnd - bb.VTBegin + 1
	if w <= 0 || h <= 0 {
		return 0
	}
	inBound, dead := 0, 0
	for i := 0; i < samples; i++ {
		tt := bb.TTBegin + rng.Int63n(w)
		vv := bb.VTBegin + rng.Int63n(h)
		covered := false
		for _, b := range leafBounds {
			if b.ContainsPoint(tt, vv) {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		inBound++
		hit := false
		for _, d := range dataShapes {
			if d.ContainsPoint(tt, vv) {
				hit = true
				break
			}
		}
		if !hit {
			dead++
		}
	}
	if inBound == 0 {
		return 0
	}
	return float64(dead) / float64(inBound)
}

// Check validates the tree's structural invariants at ct (am_check):
// every child region is covered by its parent entry now and in the future,
// node fills respect the minimum (policy permitting), levels are consistent,
// and the leaf count matches the recorded size. It returns a descriptive
// error on the first violation.
func (t *Tree) Check(ct chronon.Instant) error {
	count := 0
	var walk func(id uint64, expectLevel int, isRoot bool, parentBound *temporal.Region) error
	walk = func(id uint64, expectLevel int, isRoot bool, parentBound *temporal.Region) error {
		n, err := t.readNode(nodeID(id))
		if err != nil {
			return err
		}
		if expectLevel >= 0 && n.level != expectLevel {
			return fmt.Errorf("grtree: node %d at level %d, expected %d", n.id, n.level, expectLevel)
		}
		if n.leaf != (n.level == 0) {
			return fmt.Errorf("grtree: node %d leaf flag inconsistent with level %d", n.id, n.level)
		}
		if !isRoot && t.cfg.DeletePolicy != NoCondense && len(n.entries) < t.minFill() {
			return fmt.Errorf("grtree: node %d underfull (%d < %d)", n.id, len(n.entries), t.minFill())
		}
		if len(n.entries) > t.cfg.MaxEntries {
			return fmt.Errorf("grtree: node %d overfull (%d > %d)", n.id, len(n.entries), t.cfg.MaxEntries)
		}
		if isRoot && n.level != t.height-1 {
			return fmt.Errorf("grtree: root level %d, height %d", n.level, t.height)
		}
		for _, e := range n.entries {
			if parentBound != nil && !parentBound.CoversRegion(e.Region, ct) {
				return fmt.Errorf("grtree: node %d entry %v escapes parent bound %v", n.id, e.Region, *parentBound)
			}
			if n.leaf {
				count++
				continue
			}
			r := e.Region
			if err := walk(e.Ref, n.level-1, false, &r); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(uint64(t.root), t.height-1, true, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("grtree: leaf count %d != recorded size %d", count, t.size)
	}
	return nil
}

// Dump renders the tree structure (Figure 5 style) for grtinspect.
func (t *Tree) Dump(ct chronon.Instant) (string, error) {
	out := ""
	var walk func(id uint64, depth int) error
	walk = func(id uint64, depth int) error {
		n, err := t.readNode(nodeID(id))
		if err != nil {
			return err
		}
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		kind := "node"
		if n.leaf {
			kind = "leaf"
		}
		out += fmt.Sprintf("%s%s %d (level %d, %d entries)\n", indent, kind, n.id, n.level, len(n.entries))
		for _, e := range n.entries {
			if n.leaf {
				out += fmt.Sprintf("%s  %v -> row %d\n", indent, e.Region, e.Ref)
			} else {
				out += fmt.Sprintf("%s  %v -> node %d\n", indent, e.Region, e.Ref)
			}
		}
		if !n.leaf {
			for _, e := range n.entries {
				if err := walk(e.Ref, depth+1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(uint64(t.root), 0); err != nil {
		return "", err
	}
	return out, nil
}

func nodeID(v uint64) nodestore.NodeID { return nodestore.NodeID(v) }
