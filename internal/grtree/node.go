// Package grtree implements the GR-tree of [BJSS98] as summarised in
// Section 3 of the paper: an R*-tree-based index for now-relative bitemporal
// data. Node entries carry four timestamps in which the variables UC and NOW
// may appear, plus the "Rectangle" and "Hidden" flags; minimum bounding
// regions are rectangles or stair-shapes that grow as time passes; and the
// insertion algorithms are time-parameterised R* algorithms.
//
// The tree exposes exactly the object model of the paper's Appendix A: a
// Tree with insert, delete, and search methods, where search creates a
// Cursor storing the query predicate and tree-traversal information, and
// qualifying entries are retrieved by calling the Cursor's Next method. The
// deletion/condense/cursor-restart interplay of Section 5.5 is reproduced,
// with the paper's compromise (restart the scan only when the tree is
// actually condensed) as the default policy.
package grtree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/chronon"
	"repro/internal/nodestore"
	"repro/internal/temporal"
)

// Payload is the opaque value carried by a leaf entry: the rowid of the
// indexed tuple ("a pointer to the actual bitemporal data stored in the
// database", Section 3).
type Payload uint64

// Entry is one node entry: a (possibly growing) bitemporal region plus
// either a child-node pointer (internal nodes) or a payload (leaves).
type Entry struct {
	Region temporal.Region
	Ref    uint64 // child NodeID or Payload
}

// Child returns the entry's child node id (internal entries).
func (e Entry) Child() nodestore.NodeID { return nodestore.NodeID(e.Ref) }

// Payload returns the entry's payload (leaf entries).
func (e Entry) Payload() Payload { return Payload(e.Ref) }

// Node page layout:
//
//	[0:4)  magic "GRTN"
//	[4:5)  flags (bit0: leaf)
//	[5:6)  level (0 = leaf)
//	[6:8)  entry count
//	[8:16) reserved
//	entries at 16, entrySize bytes each:
//	   TTBegin, TTEnd, VTBegin, VTEnd (int64 big-endian; sentinel values
//	   carry UC/NOW), flags (bit0 Rectangle, bit1 Hidden), 7 pad, ref
const (
	nodeMagic  = 0x4752544E // "GRTN"
	nodeHeader = 16
	entrySize  = 48
)

// Capacity is the maximum number of entries per node (one node per page,
// Section 3).
const Capacity = (nodestore.NodeSize - nodeHeader) / entrySize

type node struct {
	id      nodestore.NodeID
	leaf    bool
	level   int
	entries []Entry
}

func (n *node) encode(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	binary.BigEndian.PutUint32(buf[0:4], nodeMagic)
	if n.leaf {
		buf[4] = 1
	}
	buf[5] = byte(n.level)
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(n.entries)))
	off := nodeHeader
	for _, e := range n.entries {
		binary.BigEndian.PutUint64(buf[off:], uint64(e.Region.TTBegin))
		binary.BigEndian.PutUint64(buf[off+8:], uint64(e.Region.TTEnd))
		binary.BigEndian.PutUint64(buf[off+16:], uint64(e.Region.VTBegin))
		binary.BigEndian.PutUint64(buf[off+24:], uint64(e.Region.VTEnd))
		var fl byte
		if e.Region.Rect {
			fl |= 1
		}
		if e.Region.Hidden {
			fl |= 2
		}
		buf[off+32] = fl
		binary.BigEndian.PutUint64(buf[off+40:], e.Ref)
		off += entrySize
	}
}

func decodeNode(id nodestore.NodeID, buf []byte) (*node, error) {
	if binary.BigEndian.Uint32(buf[0:4]) != nodeMagic {
		return nil, fmt.Errorf("grtree: node %d has bad magic", id)
	}
	n := &node{id: id, leaf: buf[4]&1 != 0, level: int(buf[5])}
	count := int(binary.BigEndian.Uint16(buf[6:8]))
	if count > Capacity {
		return nil, fmt.Errorf("grtree: node %d has impossible count %d", id, count)
	}
	n.entries = make([]Entry, count)
	off := nodeHeader
	for i := 0; i < count; i++ {
		e := Entry{
			Region: temporal.Region{
				TTBegin: chronon.Instant(binary.BigEndian.Uint64(buf[off:])),
				TTEnd:   chronon.Instant(binary.BigEndian.Uint64(buf[off+8:])),
				VTBegin: chronon.Instant(binary.BigEndian.Uint64(buf[off+16:])),
				VTEnd:   chronon.Instant(binary.BigEndian.Uint64(buf[off+24:])),
				Rect:    buf[off+32]&1 != 0,
				Hidden:  buf[off+32]&2 != 0,
			},
			Ref: binary.BigEndian.Uint64(buf[off+40:]),
		}
		n.entries[i] = e
		off += entrySize
	}
	return n, nil
}

func (t *Tree) readNode(id nodestore.NodeID) (*node, error) {
	t.latches.RLock(id)
	buf := make([]byte, nodestore.NodeSize)
	err := t.store.Read(id, buf)
	t.latches.RUnlock(id)
	if err != nil {
		return nil, err
	}
	return decodeNode(id, buf)
}

func (t *Tree) writeNode(n *node) error {
	buf := make([]byte, nodestore.NodeSize)
	n.encode(buf)
	t.latches.Lock(n.id)
	err := t.store.Write(n.id, buf)
	t.latches.Unlock(n.id)
	return err
}

// regions returns the entries' regions (for bounding computations).
func (n *node) regions() []temporal.Region {
	out := make([]temporal.Region, len(n.entries))
	for i, e := range n.entries {
		out[i] = e.Region
	}
	return out
}

// bound computes the node's minimum bounding region at ct.
func (t *Tree) bound(n *node, ct chronon.Instant) temporal.Region {
	return temporal.Bound(n.regions(), ct, t.cfg.Bound)
}
