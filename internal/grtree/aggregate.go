package grtree

import (
	"repro/internal/chronon"
	"repro/internal/nodestore"
	"repro/internal/temporal"
)

// Index-only aggregation (am_aggregate): COUNT is answered by traversing
// internal nodes and leaves without ever resolving payloads to heap tuples,
// and MIN/MAX by locating the boundary leaf entry under the qualification.
// The traversal is structure-sensitive — a concurrent split or condensation
// bumps the tree epoch and the result can no longer be trusted — so every
// entry point returns ok=false when the epoch moved, and the caller falls
// back to an ordinary tuple drain.

// aggCoverable reports whether "query contains the bounding region" implies
// every descendant leaf satisfies op. It holds for Overlaps and ContainedIn
// (leaf ⊆ bound ⊆ query ⇒ leaf inside, hence overlapping, the query);
// Equal and Contains carry no such implication.
func aggCoverable(op Op) bool {
	return op == OpOverlaps || op == OpContainedIn
}

// AggCount counts the leaf entries satisfying pred at ct without visiting
// tuples. Subtrees whose bound is fully contained in the query are summed
// without per-entry predicate evaluation (the bound covers each descendant
// region, so containment is inherited); partially covered subtrees descend
// with the internal pruning test and evaluate leaves exactly. ok is false
// when the tree changed structurally during the traversal.
func (t *Tree) AggCount(pred Predicate, ct chronon.Instant) (int64, bool, error) {
	if !pred.Query.Valid() {
		return 0, false, nil
	}
	epoch := t.epoch
	query := pred.Query.Region()
	var count int64
	var walk func(id nodestore.NodeID) error
	walk = func(id nodestore.NodeID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for _, e := range n.entries {
				if leafTest(pred.Op, e.Region, query, ct) {
					count++
				}
			}
			return nil
		}
		for _, e := range n.entries {
			if !internalTest(pred.Op, e.Region, query, ct) {
				continue
			}
			if aggCoverable(pred.Op) && query.Contains(e.Region, ct) {
				c, err := t.countAll(e.Child())
				if err != nil {
					return err
				}
				count += c
				continue
			}
			if err := walk(e.Child()); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		if t.epoch != epoch {
			// The structure moved under us; the error is a symptom, not a
			// verdict. Decline and let the caller drain tuples.
			return 0, false, nil
		}
		return 0, false, err
	}
	if t.epoch != epoch {
		return 0, false, nil
	}
	return count, true, nil
}

// countAll sums the leaf entries of a fully-covered subtree, skipping
// predicate evaluation entirely.
func (t *Tree) countAll(id nodestore.NodeID) (int64, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, err
	}
	if n.leaf {
		return int64(len(n.entries)), nil
	}
	var count int64
	for _, e := range n.entries {
		c, err := t.countAll(e.Child())
		if err != nil {
			return 0, err
		}
		count += c
	}
	return count, nil
}

// regionKeyLess orders regions by the raw lexicographic instant key
// (TTBegin, TTEnd, VTBegin, VTEnd). The chronon sentinels (NOW, UC, Forever)
// are large int64 values, so now-relative extents deterministically sort
// above all ground instants — the same total order the server's tuple-drain
// comparator applies, which is what makes pushed MIN/MAX agree exactly with
// the fallback.
func regionKeyLess(a, b temporal.Region) bool {
	if a.TTBegin != b.TTBegin {
		return a.TTBegin < b.TTBegin
	}
	if a.TTEnd != b.TTEnd {
		return a.TTEnd < b.TTEnd
	}
	if a.VTBegin != b.VTBegin {
		return a.VTBegin < b.VTBegin
	}
	return a.VTEnd < b.VTEnd
}

// AggExtreme returns the minimum (wantMax=false) or maximum (wantMax=true)
// qualifying leaf region under the raw lexicographic key. found is false when
// no entry qualifies; ok is false when the tree changed structurally.
func (t *Tree) AggExtreme(pred Predicate, ct chronon.Instant, wantMax bool) (temporal.Region, bool, bool, error) {
	if !pred.Query.Valid() {
		return temporal.Region{}, false, false, nil
	}
	epoch := t.epoch
	query := pred.Query.Region()
	var best temporal.Region
	found := false
	var walk func(id nodestore.NodeID) error
	walk = func(id nodestore.NodeID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for _, e := range n.entries {
				if !leafTest(pred.Op, e.Region, query, ct) {
					continue
				}
				if !found || (wantMax && regionKeyLess(best, e.Region)) || (!wantMax && regionKeyLess(e.Region, best)) {
					best = e.Region
					found = true
				}
			}
			return nil
		}
		for _, e := range n.entries {
			if internalTest(pred.Op, e.Region, query, ct) {
				if err := walk(e.Child()); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		if t.epoch != epoch {
			return temporal.Region{}, false, false, nil
		}
		return temporal.Region{}, false, false, err
	}
	if t.epoch != epoch {
		return temporal.Region{}, false, false, nil
	}
	return best, found, true, nil
}

// WalkLeaves visits every leaf entry (UPDATE STATISTICS histogram
// collection). The walk is unordered and not epoch-checked — statistics are
// estimates, not answers.
func (t *Tree) WalkLeaves(fn func(Entry) error) error {
	var walk func(id nodestore.NodeID) error
	walk = func(id nodestore.NodeID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for _, e := range n.entries {
				if err := fn(e); err != nil {
					return err
				}
			}
			return nil
		}
		for _, e := range n.entries {
			if err := walk(e.Child()); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root)
}
