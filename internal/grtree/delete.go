package grtree

import (
	"repro/internal/chronon"
	"repro/internal/temporal"
)

// Delete removes the leaf entry holding exactly this extent and payload,
// as of current time ct. It reports whether an entry was removed and whether
// the tree was condensed (entries re-inserted because a node underflowed) —
// the signal grt_delete uses to decide whether the scan cursor must be reset
// (Section 5.5, Table 5 step 5).
func (t *Tree) Delete(ext temporal.Extent, payload Payload, ct chronon.Instant) (removed, condensed bool, err error) {
	target := ext.Region()
	var path []pathStep
	n, e := t.readNode(t.root)
	if e != nil {
		return false, false, e
	}
	found, path, n, err := t.findLeaf(n, path, target, payload, ct)
	if err != nil || !found {
		return false, false, err
	}

	// Remove the entry from the leaf.
	for i, le := range n.entries {
		if le.Ref == uint64(payload) && le.Region == target {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			break
		}
	}
	t.size--
	if t.cfg.DeletePolicy == RestartAlways {
		t.epoch++
	}

	condensed, err = t.condense(path, n, ct)
	if err != nil {
		return true, condensed, err
	}
	return true, condensed, t.saveMeta()
}

// findLeaf locates the leaf containing (target, payload), descending only
// into children whose bounds contain the target region.
func (t *Tree) findLeaf(n *node, path []pathStep, target temporal.Region, payload Payload, ct chronon.Instant) (bool, []pathStep, *node, error) {
	if n.level == 0 {
		for _, le := range n.entries {
			if le.Ref == uint64(payload) && le.Region == target {
				return true, path, n, nil
			}
		}
		return false, path, n, nil
	}
	for idx, e := range n.entries {
		if !e.Region.Contains(target, ct) {
			continue
		}
		child, err := t.readNode(e.Child())
		if err != nil {
			return false, path, nil, err
		}
		found, p2, leaf, err := t.findLeaf(child, append(path, pathStep{n: n, idx: idx}), target, payload, ct)
		if err != nil {
			return false, path, nil, err
		}
		if found {
			return true, p2, leaf, nil
		}
	}
	return false, path, nil, nil
}

// condense repairs the tree after a removal: underfull nodes are unlinked
// and their surviving entries re-inserted at their levels (R* CondenseTree
// adapted); under NoCondense only empty nodes are unlinked. It reports
// whether any structural change happened.
func (t *Tree) condense(path []pathStep, n *node, ct chronon.Instant) (bool, error) {
	type orphan struct {
		e     Entry
		level int
	}
	var orphans []orphan
	structural := false

	for i := len(path); i >= 0; i-- {
		isRoot := n.id == t.root
		under := len(n.entries) < t.minFill()
		if t.cfg.DeletePolicy == NoCondense {
			under = len(n.entries) == 0
		}
		if !isRoot && under {
			// Unlink n from its parent and orphan its entries.
			parent := path[i-1].n
			idx := path[i-1].idx
			parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: n.level})
			}
			if err := t.store.Free(n.id); err != nil {
				return structural, err
			}
			structural = true
			n = parent
			// The parent's remaining child indexes shifted; fix deeper path
			// steps is unnecessary (we only walk upward), but sibling idx in
			// the grandparent step is still valid.
			continue
		}
		// Node survives: rewrite it and refresh the parent's bound.
		if err := t.writeNode(n); err != nil {
			return structural, err
		}
		if !isRoot {
			parent := path[i-1].n
			// idx may have shifted if an earlier sibling was unlinked at
			// this level; locate n in the parent.
			for j := range parent.entries {
				if parent.entries[j].Child() == n.id {
					parent.entries[j] = Entry{Region: t.bound(n, ct), Ref: uint64(n.id)}
					break
				}
			}
			n = parent
			continue
		}
		break
	}

	// Shrink the root while it is an internal node with a single child.
	for {
		root, err := t.readNode(t.root)
		if err != nil {
			return structural, err
		}
		if root.level == 0 || len(root.entries) != 1 {
			break
		}
		oldRoot := root.id
		t.root = root.entries[0].Child()
		t.height--
		if err := t.store.Free(oldRoot); err != nil {
			return structural, err
		}
		structural = true
	}

	if structural {
		t.epoch++
	}

	// Re-insert orphans at their original levels.
	if len(orphans) > 0 {
		reinserted := make(map[int]bool)
		for _, o := range orphans {
			if err := t.insertAtLevel(o.e, o.level, ct, reinserted); err != nil {
				return structural, err
			}
		}
	}
	return structural, t.saveMeta()
}

// DeleteWhere removes every leaf entry matching the predicate, returning
// how many were removed. It mirrors the engine's deletion procedure
// (Section 5.5): scan with a cursor, delete each qualifying entry, and reset
// the scan when the tree condenses. The cursor restart count is returned
// for experiment P4.
func (t *Tree) DeleteWhere(pred Predicate, ct chronon.Instant) (removed int, restarts int, err error) {
	cur, err := t.Search(pred, ct)
	if err != nil {
		return 0, 0, err
	}
	for {
		e, ok, err := cur.Next()
		if err != nil {
			return removed, cur.Restarts(), err
		}
		if !ok {
			return removed, cur.Restarts(), nil
		}
		// Reconstruct the extent from the stored leaf region.
		ext := temporal.Extent{
			TTBegin: e.Region.TTBegin, TTEnd: e.Region.TTEnd,
			VTBegin: e.Region.VTBegin, VTEnd: e.Region.VTEnd,
		}
		ok2, _, err := t.Delete(ext, e.Payload(), ct)
		if err != nil {
			return removed, cur.Restarts(), err
		}
		if ok2 {
			removed++
		}
	}
}
