package grtree

import (
	"fmt"
	"sync"

	"repro/internal/chronon"
	"repro/internal/nodestore"
)

// ParallelScan partitions a search by root fan-out: every matching root
// child is one unit of work in a shared queue, and each worker drives a
// PartCursor that claims subtrees from the queue and drains them with
// read-latch crabbing. Because every leaf entry lives under exactly one root
// child, the partitions' result sets are disjoint and their union equals the
// serial cursor's result set — no cross-partition deduplication is needed.
//
// Parallel scans are read-only: the server only offers parallelism to
// non-mutating statements, so the Section 5.5 restart-on-condense machinery
// does not apply here. A structural change under a live parallel scan is a
// protocol violation and surfaces as an error (epoch check), never as a
// silently wrong result.
type ParallelScan struct {
	t     *Tree
	match Matcher
	ct    chronon.Instant

	mu    sync.Mutex
	queue []nodestore.NodeID // matching root-child subtrees awaiting a worker
	epoch uint64

	cursors []*PartCursor
}

// ParallelScan offers the matcher a root fan-out partitioning. It returns
// nil (declining, no error) when the tree is too shallow or the qualification
// prunes the root down to fewer than two matching children — a serial scan
// is then at least as good.
func (t *Tree) ParallelScan(m Matcher, ct chronon.Instant, degree int) (*ParallelScan, error) {
	if degree < 2 || t.height < 2 {
		return nil, nil
	}
	ps := &ParallelScan{t: t, match: m, ct: ct}
	if err := ps.build(); err != nil {
		return nil, err
	}
	if len(ps.queue) < 2 {
		return nil, nil
	}
	return ps, nil
}

// build seeds the work queue with the root's matching children. Caller must
// hold ps.mu (or be the only goroutine, at construction/rescan time).
func (ps *ParallelScan) build() error {
	root, err := ps.t.readNode(ps.t.root)
	if err != nil {
		return err
	}
	ps.queue = ps.queue[:0]
	if root.level == 0 {
		// The root became a leaf (possible only across a rescan): a single
		// work unit keeps the scan correct, just not parallel.
		ps.queue = append(ps.queue, root.id)
	} else {
		for _, e := range root.entries {
			if ps.match.InternalMatch(e.Region, ps.ct) {
				ps.queue = append(ps.queue, e.Child())
			}
		}
	}
	ps.epoch = ps.t.epoch
	return nil
}

// Parts returns the number of independent work units — the server caps the
// worker count here (more workers than subtrees would idle).
func (ps *ParallelScan) Parts() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.queue)
}

// Cursor hands out one worker's partition cursor.
func (ps *ParallelScan) Cursor() *PartCursor {
	c := &PartCursor{ps: ps}
	ps.mu.Lock()
	ps.cursors = append(ps.cursors, c)
	ps.mu.Unlock()
	return c
}

// claim pops one subtree from the shared queue.
func (ps *ParallelScan) claim() (nodestore.NodeID, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(ps.queue) == 0 {
		return nodestore.NilNode, false
	}
	id := ps.queue[0]
	ps.queue = ps.queue[1:]
	return id, true
}

// Reset re-seeds the work queue and rewinds every handed-out partition
// cursor (grt_rescan). The server guarantees all workers have stopped.
func (ps *ParallelScan) Reset() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, c := range ps.cursors {
		c.reset()
	}
	return ps.build()
}

// PartCursor drains subtrees claimed from a ParallelScan's queue. Each
// worker owns one; distinct PartCursors are safe to drive concurrently. The
// descent is read-latch crabbed: the child's latch is acquired before the
// parent's is released, so a node is never decoded while a writer holds it.
// All latches are released before NextBatch returns.
type PartCursor struct {
	ps    *ParallelScan
	stack []cursorFrame
	held  nodestore.NodeID // node whose read latch is currently held
}

// latchRead reads node id under the crabbing protocol and pushes its frame.
func (c *PartCursor) push(id nodestore.NodeID) error {
	lt := c.ps.t.latches
	if c.held == nodestore.NilNode {
		lt.RLock(id)
	} else {
		lt.Crab(c.held, id)
	}
	c.held = id
	buf := make([]byte, nodestore.NodeSize)
	if err := c.ps.t.store.Read(id, buf); err != nil {
		c.unlatch()
		return err
	}
	n, err := decodeNode(id, buf)
	if err != nil {
		c.unlatch()
		return err
	}
	c.stack = append(c.stack, cursorFrame{entries: n.entries, level: n.level})
	return nil
}

func (c *PartCursor) unlatch() {
	if c.held != nodestore.NilNode {
		c.ps.t.latches.RUnlock(c.held)
		c.held = nodestore.NilNode
	}
}

func (c *PartCursor) reset() {
	c.unlatch()
	c.stack = nil
}

// NextBatch fills dst with the next qualifying entries from this worker's
// partitions; fewer than len(dst) means the shared queue is drained and the
// worker is done.
func (c *PartCursor) NextBatch(dst []Entry) (int, error) {
	if c.ps.t.epoch != c.ps.epoch {
		c.unlatch()
		return 0, fmt.Errorf("grtree: tree reorganised under a parallel scan")
	}
	n := 0
	for n < len(dst) {
		if len(c.stack) == 0 {
			c.unlatch()
			id, ok := c.ps.claim()
			if !ok {
				return n, nil
			}
			if err := c.push(id); err != nil {
				return n, err
			}
			continue
		}
		frame := &c.stack[len(c.stack)-1]
		if frame.idx >= len(frame.entries) {
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		if frame.level == 0 {
			for frame.idx < len(frame.entries) && n < len(dst) {
				e := frame.entries[frame.idx]
				frame.idx++
				if c.ps.match.LeafMatch(e.Region, c.ps.ct) {
					dst[n] = e
					n++
				}
			}
			continue
		}
		e := frame.entries[frame.idx]
		frame.idx++
		if c.ps.match.InternalMatch(e.Region, c.ps.ct) {
			if err := c.push(e.Child()); err != nil {
				return n, err
			}
		}
	}
	c.unlatch()
	return n, nil
}
