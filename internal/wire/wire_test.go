package wire

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"

	"repro/internal/chronon"
	"repro/internal/types"
)

// pipeConn is an in-memory bidirectional stream for framing tests.
func pipeConn(t *testing.T) (client, server net.Conn) {
	t.Helper()
	c, s := net.Pipe()
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

// registerPair registers the same opaque type in two registries, with a
// send/receive transform that actually changes the bytes (XOR), so the test
// notices if either support function is skipped.
func registerPair(t *testing.T) (srv, cli *types.Registry) {
	t.Helper()
	srv, cli = types.NewRegistry(), types.NewRegistry()
	for _, reg := range []*types.Registry{srv, cli} {
		_, err := reg.RegisterOpaque("period", types.SupportFuncs{
			Input:  func(text string) ([]byte, error) { return []byte(text), nil },
			Output: func(data []byte) (string, error) { return string(data), nil },
			Send: func(data []byte) ([]byte, error) {
				w := make([]byte, len(data))
				for i, b := range data {
					w[i] = b ^ 0x5a
				}
				return w, nil
			},
			Receive: func(w []byte) ([]byte, error) {
				data := make([]byte, len(w))
				for i, b := range w {
					data[i] = b ^ 0x5a
				}
				return data, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return srv, cli
}

func roundTrip(t *testing.T, sendReg, recvReg *types.Registry, m Message) Message {
	t.Helper()
	cn, sn := pipeConn(t)
	sender := NewConn(sn, sendReg)
	receiver := NewConn(cn, recvReg)
	errc := make(chan error, 1)
	go func() { errc <- sender.Send(m) }()
	got, err := receiver.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Send: %v", err)
	}
	return got
}

func TestControlFrames(t *testing.T) {
	for _, m := range []Message{
		&Hello{Version: Version, Banner: "tinyblade"},
		&Welcome{Version: Version, Banner: "tinybladed 0.1"},
		&Exec{SQL: "SELECT * FROM t; SELECT count(*) FROM t"},
		&Header{
			Columns: []string{"id", "p"},
			Types:   []ColType{{Kind: byte(types.KInt), Name: "INTEGER"}, {Kind: byte(types.KOpaque), Name: "period"}},
			Plan:    "SELECT heap scan",
		},
		&Done{Affected: -1, Message: "table created", Profile: "elapsed=1ms"},
		&Error{Code: "42P01", Message: "no such table"},
		&Quit{},
	} {
		got := roundTrip(t, nil, nil, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\n got %#v\nwant %#v", m, got, m)
		}
	}
}

// The version-2 prepared-statement frames round-trip, argument vectors
// included.
func TestPreparedFrames(t *testing.T) {
	for _, m := range []Message{
		&Parse{Name: "q1", SQL: "SELECT * FROM t WHERE id = $1"},
		&Prepared{Name: "q1", NParams: 3},
		&Bind{Name: "q1", Args: []types.Datum{int64(7), "x", true}},
		&ExecutePrepared{Name: "q1", Args: []types.Datum{int64(7), 2.5, chronon.MustParse("9/97")}},
		&ExecutePrepared{Name: "q1", UseBound: true},
		&CloseStmt{Name: "q1"},
	} {
		got := roundTrip(t, nil, nil, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\n got %#v\nwant %#v", m, got, m)
		}
	}
}

// Opaque datums in an argument vector go through Send/Receive like row
// datums do.
func TestPreparedArgsOpaque(t *testing.T) {
	srv, cli := registerPair(t)
	ot, _ := srv.Lookup("period")
	cliOT, _ := cli.Lookup("period")

	in := &ExecutePrepared{Name: "q", Args: []types.Datum{types.Opaque{TypeID: ot.ID, Data: []byte("1/97-3/97")}}}
	got := roundTrip(t, cli, srv, in).(*ExecutePrepared)
	// Note the direction: args flow client → server, so the sender encodes
	// with the client registry and the receiver resolves with the server's.
	op, ok := got.Args[0].(types.Opaque)
	if !ok {
		t.Fatalf("opaque arg arrived as %T", got.Args[0])
	}
	if string(op.Data) != "1/97-3/97" {
		t.Fatalf("opaque arg round trip: %+v", op)
	}
	_ = cliOT
}

// A version-1 Welcome — no capability word — must decode with Caps zero,
// and a version-2 Welcome's Caps must survive the trip. This is the
// compatibility hinge: decoders ignore trailing payload bytes, so each side
// can be upgraded independently.
func TestWelcomeCapsCompat(t *testing.T) {
	got := roundTrip(t, nil, nil, &Welcome{Version: 2, Banner: "d", Caps: CapPrepared}).(*Welcome)
	if got.Caps != CapPrepared {
		t.Fatalf("v2 Welcome caps: %#x", got.Caps)
	}

	// Hand-build the version-1 payload: u16 version, string banner, nothing
	// after — exactly what a v1 peer's encoder emits.
	var e enc
	e.u16(1)
	e.str("old server")
	var buf bytes.Buffer
	var hdr [5]byte
	hdr[3] = byte(len(e.buf))
	hdr[4] = byte(MsgWelcome)
	buf.Write(hdr[:])
	buf.Write(e.buf)
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{&buf, io.Discard}, nil)
	m, err := c.Recv()
	if err != nil {
		t.Fatalf("v1 Welcome decode: %v", err)
	}
	w := m.(*Welcome)
	if w.Version != 1 || w.Banner != "old server" || w.Caps != 0 {
		t.Fatalf("v1 Welcome: %+v", w)
	}

	// The mirror direction: a v1 peer decoding a v2 Welcome must not choke
	// on the trailing capability word — its decoder skips unread bytes. The
	// shared dec already guarantees this (it only errors on underflow); prove
	// it by decoding a v2 frame and checking no error even though a v1-shaped
	// read (version + banner) leaves 4 bytes unread.
	e = enc{}
	e.u16(2)
	e.str("new server")
	e.u32(CapPrepared)
	d := dec{buf: e.buf}
	if v, b := d.u16(), d.str(); v != 2 || b != "new server" || d.err != nil {
		t.Fatalf("v1-shaped read of v2 Welcome: %d %q %v", v, b, d.err)
	}
}

// Every datum kind must survive the trip; opaque values must pass through
// Send on the way out and Receive on the way in.
func TestRowBatchRoundTrip(t *testing.T) {
	srv, cli := registerPair(t)
	ot, _ := srv.Lookup("period")
	cliOT, _ := cli.Lookup("period")

	in := &RowBatch{Rows: [][]types.Datum{
		{int64(-7), float64(2.5), "text", true, chronon.MustParse("9/97"), nil},
		{types.Opaque{TypeID: ot.ID, Data: []byte("1/97-3/97")}},
	}}
	got := roundTrip(t, srv, cli, in).(*RowBatch)
	if len(got.Rows) != 2 {
		t.Fatalf("rows: %d", len(got.Rows))
	}
	want0 := in.Rows[0]
	for i, d := range got.Rows[0] {
		if d != want0[i] {
			t.Fatalf("col %d: got %#v want %#v", i, d, want0[i])
		}
	}
	op, ok := got.Rows[1][0].(types.Opaque)
	if !ok {
		t.Fatalf("opaque arrived as %T", got.Rows[1][0])
	}
	if op.TypeID != cliOT.ID || string(op.Data) != "1/97-3/97" {
		t.Fatalf("opaque round trip: %+v", op)
	}
}

// A client without the blade loaded still gets a displayable value: the
// Output text stands in for the opaque datum.
func TestOpaqueFallbackWithoutBlade(t *testing.T) {
	srv, _ := registerPair(t)
	ot, _ := srv.Lookup("period")
	bare := types.NewRegistry() // no period type here

	in := &RowBatch{Rows: [][]types.Datum{{types.Opaque{TypeID: ot.ID, Data: []byte("5/97-9/97")}}}}
	got := roundTrip(t, srv, bare, in).(*RowBatch)
	s, ok := got.Rows[0][0].(string)
	if !ok || s != "5/97-9/97" {
		t.Fatalf("fallback datum: %#v", got.Rows[0][0])
	}
}

func TestResolveColTypes(t *testing.T) {
	_, cli := registerPair(t)
	cliOT, _ := cli.Lookup("period")
	cts := []ColType{
		{Kind: byte(types.KVarchar), Name: "VARCHAR"},
		{Kind: byte(types.KOpaque), Name: "period"},
		{Kind: byte(types.KOpaque), Name: "mystery"},
	}
	ts := ResolveColTypes(cli, cts)
	if ts[0].Kind != types.KVarchar {
		t.Fatalf("builtin: %v", ts[0])
	}
	if ts[1].Kind != types.KOpaque || ts[1].OpaqueID != cliOT.ID {
		t.Fatalf("known opaque: %v", ts[1])
	}
	if ts[2].Kind != types.KOpaque || ts[2].OpaqueID != 0 {
		t.Fatalf("unknown opaque: %v", ts[2])
	}
}

// Corrupt frames must fail cleanly, not panic or block.
func TestMalformedFrames(t *testing.T) {
	// Truncated payload relative to the declared length: reader sees EOF.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 50, byte(MsgExec), 1, 2, 3})
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{&buf, io.Discard}, nil)
	if _, err := c.Recv(); err == nil {
		t.Fatal("truncated frame must error")
	}

	// Oversized length word is rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgExec)})
	if _, err := c.Recv(); err == nil {
		t.Fatal("oversized frame must error")
	}

	// Unknown frame type.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0, 99})
	if _, err := c.Recv(); err == nil {
		t.Fatal("unknown frame type must error")
	}

	// A declared row/column count larger than the payload must error out
	// instead of looping: the sticky decoder error stops the loops.
	var e enc
	e.u32(1 << 30)
	buf.Reset()
	var hdr [5]byte
	hdr[3] = byte(len(e.buf))
	hdr[4] = byte(MsgRowBatch)
	buf.Write(hdr[:])
	buf.Write(e.buf)
	if _, err := c.Recv(); err == nil {
		t.Fatal("row count overflow must error")
	}
}
