package wire

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"

	"repro/internal/chronon"
	"repro/internal/types"
)

// pipeConn is an in-memory bidirectional stream for framing tests.
func pipeConn(t *testing.T) (client, server net.Conn) {
	t.Helper()
	c, s := net.Pipe()
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

// registerPair registers the same opaque type in two registries, with a
// send/receive transform that actually changes the bytes (XOR), so the test
// notices if either support function is skipped.
func registerPair(t *testing.T) (srv, cli *types.Registry) {
	t.Helper()
	srv, cli = types.NewRegistry(), types.NewRegistry()
	for _, reg := range []*types.Registry{srv, cli} {
		_, err := reg.RegisterOpaque("period", types.SupportFuncs{
			Input:  func(text string) ([]byte, error) { return []byte(text), nil },
			Output: func(data []byte) (string, error) { return string(data), nil },
			Send: func(data []byte) ([]byte, error) {
				w := make([]byte, len(data))
				for i, b := range data {
					w[i] = b ^ 0x5a
				}
				return w, nil
			},
			Receive: func(w []byte) ([]byte, error) {
				data := make([]byte, len(w))
				for i, b := range w {
					data[i] = b ^ 0x5a
				}
				return data, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return srv, cli
}

func roundTrip(t *testing.T, sendReg, recvReg *types.Registry, m Message) Message {
	t.Helper()
	cn, sn := pipeConn(t)
	sender := NewConn(sn, sendReg)
	receiver := NewConn(cn, recvReg)
	errc := make(chan error, 1)
	go func() { errc <- sender.Send(m) }()
	got, err := receiver.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Send: %v", err)
	}
	return got
}

func TestControlFrames(t *testing.T) {
	for _, m := range []Message{
		&Hello{Version: Version, Banner: "tinyblade"},
		&Welcome{Version: Version, Banner: "tinybladed 0.1"},
		&Exec{SQL: "SELECT * FROM t; SELECT count(*) FROM t"},
		&Header{
			Columns: []string{"id", "p"},
			Types:   []ColType{{Kind: byte(types.KInt), Name: "INTEGER"}, {Kind: byte(types.KOpaque), Name: "period"}},
			Plan:    "SELECT heap scan",
		},
		&Done{Affected: -1, Message: "table created", Profile: "elapsed=1ms"},
		&Error{Code: "42P01", Message: "no such table"},
		&Quit{},
	} {
		got := roundTrip(t, nil, nil, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\n got %#v\nwant %#v", m, got, m)
		}
	}
}

// Every datum kind must survive the trip; opaque values must pass through
// Send on the way out and Receive on the way in.
func TestRowBatchRoundTrip(t *testing.T) {
	srv, cli := registerPair(t)
	ot, _ := srv.Lookup("period")
	cliOT, _ := cli.Lookup("period")

	in := &RowBatch{Rows: [][]types.Datum{
		{int64(-7), float64(2.5), "text", true, chronon.MustParse("9/97"), nil},
		{types.Opaque{TypeID: ot.ID, Data: []byte("1/97-3/97")}},
	}}
	got := roundTrip(t, srv, cli, in).(*RowBatch)
	if len(got.Rows) != 2 {
		t.Fatalf("rows: %d", len(got.Rows))
	}
	want0 := in.Rows[0]
	for i, d := range got.Rows[0] {
		if d != want0[i] {
			t.Fatalf("col %d: got %#v want %#v", i, d, want0[i])
		}
	}
	op, ok := got.Rows[1][0].(types.Opaque)
	if !ok {
		t.Fatalf("opaque arrived as %T", got.Rows[1][0])
	}
	if op.TypeID != cliOT.ID || string(op.Data) != "1/97-3/97" {
		t.Fatalf("opaque round trip: %+v", op)
	}
}

// A client without the blade loaded still gets a displayable value: the
// Output text stands in for the opaque datum.
func TestOpaqueFallbackWithoutBlade(t *testing.T) {
	srv, _ := registerPair(t)
	ot, _ := srv.Lookup("period")
	bare := types.NewRegistry() // no period type here

	in := &RowBatch{Rows: [][]types.Datum{{types.Opaque{TypeID: ot.ID, Data: []byte("5/97-9/97")}}}}
	got := roundTrip(t, srv, bare, in).(*RowBatch)
	s, ok := got.Rows[0][0].(string)
	if !ok || s != "5/97-9/97" {
		t.Fatalf("fallback datum: %#v", got.Rows[0][0])
	}
}

func TestResolveColTypes(t *testing.T) {
	_, cli := registerPair(t)
	cliOT, _ := cli.Lookup("period")
	cts := []ColType{
		{Kind: byte(types.KVarchar), Name: "VARCHAR"},
		{Kind: byte(types.KOpaque), Name: "period"},
		{Kind: byte(types.KOpaque), Name: "mystery"},
	}
	ts := ResolveColTypes(cli, cts)
	if ts[0].Kind != types.KVarchar {
		t.Fatalf("builtin: %v", ts[0])
	}
	if ts[1].Kind != types.KOpaque || ts[1].OpaqueID != cliOT.ID {
		t.Fatalf("known opaque: %v", ts[1])
	}
	if ts[2].Kind != types.KOpaque || ts[2].OpaqueID != 0 {
		t.Fatalf("unknown opaque: %v", ts[2])
	}
}

// Corrupt frames must fail cleanly, not panic or block.
func TestMalformedFrames(t *testing.T) {
	// Truncated payload relative to the declared length: reader sees EOF.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 50, byte(MsgExec), 1, 2, 3})
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{&buf, io.Discard}, nil)
	if _, err := c.Recv(); err == nil {
		t.Fatal("truncated frame must error")
	}

	// Oversized length word is rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgExec)})
	if _, err := c.Recv(); err == nil {
		t.Fatal("oversized frame must error")
	}

	// Unknown frame type.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0, 99})
	if _, err := c.Recv(); err == nil {
		t.Fatal("unknown frame type must error")
	}

	// A declared row/column count larger than the payload must error out
	// instead of looping: the sticky decoder error stops the loops.
	var e enc
	e.u32(1 << 30)
	buf.Reset()
	var hdr [5]byte
	hdr[3] = byte(len(e.buf))
	hdr[4] = byte(MsgRowBatch)
	buf.Write(hdr[:])
	buf.Write(e.buf)
	if _, err := c.Recv(); err == nil {
		t.Fatal("row count overflow must error")
	}
}
