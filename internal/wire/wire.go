// Package wire is tinyblade's client/server protocol: length-prefixed
// binary frames over a byte stream. A frame is
//
//	uint32 payload length (big-endian) | 1 byte message type | payload
//
// and a statement round trip is
//
//	C: Exec{sql}
//	S: Header{columns, types, plan}        (on success)
//	S: RowBatch{rows}...                   (zero or more)
//	S: Done{affected, message, profile}
//	S: Error{sqlstate, message}            (instead, at any point)
//
// Datums travel in a tagged binary form. Values of opaque (user-defined)
// types go through the type's Send support function on the way out and
// Receive on the way in — exactly the client/server transformation the
// support-function table in the paper reserves send/receive for — plus the
// Output-rendered text, so a client that has not loaded the type's blade
// still gets a displayable value.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/chronon"
	"repro/internal/types"
)

// Version is the protocol revision negotiated in Hello/Welcome. Version 2
// added the prepared-statement frames (Parse/Bind/ExecutePrepared/CloseStmt)
// and the Welcome capability bitmask; a version-1 peer interoperates — the
// server accepts v1 Hellos, and a v1 client ignores the Welcome's trailing
// capability bytes.
const Version = 2

// Capability bits advertised in Welcome.Caps.
const (
	// CapPrepared: the server accepts Parse, Bind, ExecutePrepared, and
	// CloseStmt frames.
	CapPrepared uint32 = 1 << 0
)

// MaxFrame bounds a frame payload (defense against corrupt length words).
const MaxFrame = 64 << 20

// MsgType tags a frame.
type MsgType byte

// Frame types.
const (
	MsgHello MsgType = iota + 1
	MsgWelcome
	MsgExec
	MsgHeader
	MsgRowBatch
	MsgDone
	MsgError
	MsgQuit
	// Protocol version 2 (prepared statements):
	MsgParse
	MsgPrepared
	MsgBind
	MsgExecutePrepared
	MsgCloseStmt
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgWelcome:
		return "Welcome"
	case MsgExec:
		return "Exec"
	case MsgHeader:
		return "Header"
	case MsgRowBatch:
		return "RowBatch"
	case MsgDone:
		return "Done"
	case MsgError:
		return "Error"
	case MsgQuit:
		return "Quit"
	case MsgParse:
		return "Parse"
	case MsgPrepared:
		return "Prepared"
	case MsgBind:
		return "Bind"
	case MsgExecutePrepared:
		return "ExecutePrepared"
	case MsgCloseStmt:
		return "CloseStmt"
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// Message is any frame payload.
type Message interface{ msgType() MsgType }

// Hello opens a connection (client → server).
type Hello struct {
	Version uint16
	Banner  string
}

// Welcome acknowledges a Hello (server → client). Caps advertises optional
// protocol features; it travels after the version-1 fields, so a version-1
// client simply never reads it (decoders ignore trailing payload bytes) and
// a version-1 server's Welcome decodes here with Caps == 0.
type Welcome struct {
	Version uint16
	Banner  string
	Caps    uint32
}

// Exec submits SQL text — one statement or a semicolon-separated script
// (scripts execute like Session.ExecScript: the last statement's result
// streams back).
type Exec struct{ SQL string }

// ColType is a column's type as it travels: the kind plus, for opaque
// types, the registered type name the client resolves locally.
type ColType struct {
	Kind byte
	Name string
}

// Header announces a statement's result shape before any rows.
type Header struct {
	Columns []string
	Types   []ColType
	Plan    string // rendered access plan ("" when the statement has none)
}

// RowBatch carries one batch of rows.
type RowBatch struct{ Rows [][]types.Datum }

// Done ends a successful statement.
type Done struct {
	Affected int64
	Message  string
	Profile  string // rendered statement profile ("" when absent)
}

// Error ends a failed statement (or refuses a connection): the engine's
// SQLSTATE-style code rides along so clients dispatch on the class of the
// failure exactly as embedded callers do with engine.ErrorCode.
type Error struct {
	Code    string
	Message string
}

// Quit announces an orderly client disconnect.
type Quit struct{}

// Parse asks the server to parse and register a named prepared statement
// (client → server, requires CapPrepared). The server answers Prepared or
// Error.
type Parse struct {
	Name string
	SQL  string
}

// Prepared acknowledges a Parse with the statement's parameter count.
type Prepared struct {
	Name    string
	NParams uint16
}

// Bind stores an argument vector against a prepared statement on the
// server's connection state, so repeated executions of the same binding
// need not re-ship the datums. The server answers Done or Error.
type Bind struct {
	Name string
	Args []types.Datum
}

// ExecutePrepared runs a prepared statement. With UseBound set the server
// substitutes the argument vector last Bind-ed for this statement name;
// otherwise the inline Args bind positionally. The reply stream is the same
// Header/RowBatch.../Done shape Exec produces.
type ExecutePrepared struct {
	Name     string
	UseBound bool
	Args     []types.Datum
}

// CloseStmt deallocates a prepared statement and drops any stored binding.
// The server answers Done or Error.
type CloseStmt struct{ Name string }

func (*Hello) msgType() MsgType           { return MsgHello }
func (*Welcome) msgType() MsgType         { return MsgWelcome }
func (*Exec) msgType() MsgType            { return MsgExec }
func (*Header) msgType() MsgType          { return MsgHeader }
func (*RowBatch) msgType() MsgType        { return MsgRowBatch }
func (*Done) msgType() MsgType            { return MsgDone }
func (*Error) msgType() MsgType           { return MsgError }
func (*Quit) msgType() MsgType            { return MsgQuit }
func (*Parse) msgType() MsgType           { return MsgParse }
func (*Prepared) msgType() MsgType        { return MsgPrepared }
func (*Bind) msgType() MsgType            { return MsgBind }
func (*ExecutePrepared) msgType() MsgType { return MsgExecutePrepared }
func (*CloseStmt) msgType() MsgType       { return MsgCloseStmt }

// Conn frames messages over a byte stream. Reads and writes are buffered;
// Send flushes after every frame. A Conn is not safe for concurrent use on
// the same direction, matching the strictly alternating protocol.
type Conn struct {
	r   *bufio.Reader
	w   *bufio.Writer
	reg *types.Registry
}

// NewConn wraps a stream. The registry drives opaque-datum send/receive;
// either side may pass a registry missing types the other has (decode then
// falls back to the Output text).
func NewConn(rw io.ReadWriter, reg *types.Registry) *Conn {
	return &Conn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw), reg: reg}
}

// Send encodes and flushes one message.
func (c *Conn) Send(m Message) error {
	var e enc
	switch t := m.(type) {
	case *Hello:
		e.u16(t.Version)
		e.str(t.Banner)
	case *Welcome:
		e.u16(t.Version)
		e.str(t.Banner)
		e.u32(t.Caps)
	case *Exec:
		e.str(t.SQL)
	case *Parse:
		e.str(t.Name)
		e.str(t.SQL)
	case *Prepared:
		e.str(t.Name)
		e.u16(t.NParams)
	case *Bind:
		e.str(t.Name)
		if err := e.args(c.reg, t.Args); err != nil {
			return err
		}
	case *ExecutePrepared:
		e.str(t.Name)
		if t.UseBound {
			e.u8(1)
		} else {
			e.u8(0)
		}
		if err := e.args(c.reg, t.Args); err != nil {
			return err
		}
	case *CloseStmt:
		e.str(t.Name)
	case *Header:
		e.u32(uint32(len(t.Columns)))
		for _, col := range t.Columns {
			e.str(col)
		}
		e.u32(uint32(len(t.Types)))
		for _, ct := range t.Types {
			e.u8(ct.Kind)
			e.str(ct.Name)
		}
		e.str(t.Plan)
	case *RowBatch:
		e.u32(uint32(len(t.Rows)))
		for _, row := range t.Rows {
			e.u32(uint32(len(row)))
			for _, d := range row {
				if err := e.datum(c.reg, d); err != nil {
					return err
				}
			}
		}
	case *Done:
		e.u64(uint64(t.Affected))
		e.str(t.Message)
		e.str(t.Profile)
	case *Error:
		e.str(t.Code)
		e.str(t.Message)
	case *Quit:
	default:
		return fmt.Errorf("wire: unsendable message %T", m)
	}
	if len(e.buf) > MaxFrame {
		return fmt.Errorf("wire: %v frame exceeds %d bytes", m.msgType(), MaxFrame)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(e.buf)))
	hdr[4] = byte(m.msgType())
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(e.buf); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads and decodes the next message. io.EOF surfaces unchanged when
// the peer closed between frames.
func (c *Conn) Recv() (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return nil, err
	}
	d := dec{buf: payload}
	var m Message
	switch MsgType(hdr[4]) {
	case MsgHello:
		m = &Hello{Version: d.u16(), Banner: d.str()}
	case MsgWelcome:
		w := &Welcome{Version: d.u16(), Banner: d.str()}
		// Caps is absent from a version-1 peer's Welcome; default zero.
		if d.err == nil && d.pos < len(d.buf) {
			w.Caps = d.u32()
		}
		m = w
	case MsgExec:
		m = &Exec{SQL: d.str()}
	case MsgParse:
		m = &Parse{Name: d.str(), SQL: d.str()}
	case MsgPrepared:
		m = &Prepared{Name: d.str(), NParams: d.u16()}
	case MsgBind:
		m = &Bind{Name: d.str(), Args: d.args(c.reg)}
	case MsgExecutePrepared:
		m = &ExecutePrepared{Name: d.str(), UseBound: d.u8() != 0, Args: d.args(c.reg)}
	case MsgCloseStmt:
		m = &CloseStmt{Name: d.str()}
	case MsgHeader:
		h := &Header{}
		for n := d.u32(); n > 0 && d.err == nil; n-- {
			h.Columns = append(h.Columns, d.str())
		}
		for n := d.u32(); n > 0 && d.err == nil; n-- {
			h.Types = append(h.Types, ColType{Kind: d.u8(), Name: d.str()})
		}
		h.Plan = d.str()
		m = h
	case MsgRowBatch:
		b := &RowBatch{}
		for n := d.u32(); n > 0 && d.err == nil; n-- {
			row := make([]types.Datum, 0, 4)
			for k := d.u32(); k > 0 && d.err == nil; k-- {
				row = append(row, d.datum(c.reg))
			}
			b.Rows = append(b.Rows, row)
		}
		m = b
	case MsgDone:
		m = &Done{Affected: int64(d.u64()), Message: d.str(), Profile: d.str()}
	case MsgError:
		m = &Error{Code: d.str(), Message: d.str()}
	case MsgQuit:
		m = &Quit{}
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", hdr[4])
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: bad %v frame: %w", MsgType(hdr[4]), d.err)
	}
	return m, nil
}

// datum tags -------------------------------------------------------------------

const (
	tagNull byte = iota
	tagInt
	tagFloat
	tagString
	tagBool
	tagDate
	tagOpaque
)

// KindOf maps a types.Type to its wire ColType.
func KindOf(t types.Type) ColType {
	return ColType{Kind: byte(t.Kind), Name: t.Name}
}

// ResolveColTypes maps wire column types back to engine types against the
// receiver's registry. An opaque type the receiver has not registered stays
// KOpaque with a zero id — its datums arrive as display text anyway.
func ResolveColTypes(reg *types.Registry, cts []ColType) []types.Type {
	if len(cts) == 0 {
		return nil
	}
	out := make([]types.Type, len(cts))
	for i, ct := range cts {
		t := types.Type{Kind: types.Kind(ct.Kind), Name: ct.Name}
		if t.Kind == types.KOpaque && reg != nil {
			if ot, ok := reg.Lookup(ct.Name); ok {
				t.OpaqueID = ot.ID
			}
		}
		out[i] = t
	}
	return out
}

// encoder ----------------------------------------------------------------------

type enc struct{ buf []byte }

func (e *enc) u8(v byte)     { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16)  { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32)  { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64)  { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *enc) str(s string)  { e.u32(uint32(len(s))); e.buf = append(e.buf, s...) }
func (e *enc) blob(b []byte) { e.u32(uint32(len(b))); e.buf = append(e.buf, b...) }

// datum encodes one tagged value. Opaque values carry the type name, the
// Send-transformed wire bytes, and the Output text fallback.
func (e *enc) datum(reg *types.Registry, d types.Datum) error {
	switch v := d.(type) {
	case nil:
		e.u8(tagNull)
	case int64:
		e.u8(tagInt)
		e.u64(uint64(v))
	case float64:
		e.u8(tagFloat)
		e.u64(math.Float64bits(v))
	case string:
		e.u8(tagString)
		e.str(v)
	case bool:
		e.u8(tagBool)
		if v {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case chronon.Instant:
		e.u8(tagDate)
		e.u64(uint64(v))
	case types.Opaque:
		ot, ok := reg.LookupID(v.TypeID)
		if !ok {
			return fmt.Errorf("wire: unregistered opaque type id %d", v.TypeID)
		}
		w, err := ot.Support.Send(v.Data)
		if err != nil {
			return fmt.Errorf("wire: %s send: %w", ot.Name, err)
		}
		text, err := ot.Support.Output(v.Data)
		if err != nil {
			return fmt.Errorf("wire: %s output: %w", ot.Name, err)
		}
		e.u8(tagOpaque)
		e.str(ot.Name)
		e.blob(w)
		e.str(text)
	default:
		return fmt.Errorf("wire: unencodable datum %T", d)
	}
	return nil
}

// args encodes an argument vector as a count plus tagged datums.
func (e *enc) args(reg *types.Registry, args []types.Datum) error {
	e.u32(uint32(len(args)))
	for _, a := range args {
		if err := e.datum(reg, a); err != nil {
			return err
		}
	}
	return nil
}

// decoder ----------------------------------------------------------------------

type dec struct {
	buf []byte
	pos int
	err error
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.pos+n > len(d.buf) {
		d.err = io.ErrUnexpectedEOF
		return false
	}
	return true
}

func (d *dec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v
}

func (d *dec) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	v := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return v
}

func (d *dec) blob() []byte {
	n := int(d.u32())
	if !d.need(n) {
		return nil
	}
	v := append([]byte(nil), d.buf[d.pos:d.pos+n]...)
	d.pos += n
	return v
}

// args decodes an argument vector.
func (d *dec) args(reg *types.Registry) []types.Datum {
	n := d.u32()
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]types.Datum, 0, n)
	for ; n > 0 && d.err == nil; n-- {
		out = append(out, d.datum(reg))
	}
	return out
}

// datum decodes one tagged value. An opaque value resolves against the
// local registry through Receive; if the type is not registered here the
// Output text stands in as a plain string, so results stay displayable on
// blade-less clients.
func (d *dec) datum(reg *types.Registry) types.Datum {
	switch tag := d.u8(); tag {
	case tagNull:
		return nil
	case tagInt:
		return int64(d.u64())
	case tagFloat:
		return math.Float64frombits(d.u64())
	case tagString:
		return d.str()
	case tagBool:
		return d.u8() != 0
	case tagDate:
		return chronon.Instant(d.u64())
	case tagOpaque:
		name := d.str()
		w := d.blob()
		text := d.str()
		if d.err != nil {
			return nil
		}
		if reg != nil {
			if ot, ok := reg.Lookup(name); ok {
				data, err := ot.Support.Receive(w)
				if err != nil {
					d.err = fmt.Errorf("%s receive: %w", name, err)
					return nil
				}
				return types.Opaque{TypeID: ot.ID, Data: data}
			}
		}
		return text
	default:
		if d.err == nil {
			d.err = fmt.Errorf("unknown datum tag %d", tag)
		}
		return nil
	}
}
