package storage

// EnsurePages extends the pager so every page below n exists (recovery may
// replay updates to pages whose allocation was lost in a crash).
func (m *MemPager) EnsurePages(n uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for uint64(len(m.pages)) < n {
		m.pages = append(m.pages, make([]byte, PageSize))
	}
	for i := uint64(1); i < n; i++ {
		if m.pages[i] == nil {
			m.pages[i] = make([]byte, PageSize)
		}
	}
	return nil
}

// EnsurePages extends the file pager so every page below n exists.
func (p *FilePager) EnsurePages(n uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.numPages >= n {
		return nil
	}
	zero := make([]byte, PageSize)
	for p.numPages < n {
		if _, err := p.f.WriteAt(zero, int64(p.numPages)*PageSize); err != nil {
			return err
		}
		p.numPages++
	}
	return p.writeHeader()
}

// WALStore adapts a Pager to the wal.PageStore interface (structurally; this
// package does not import the wal package).
type WALStore struct{ P Pager }

// ReadPage implements wal.PageStore.
func (w WALStore) ReadPage(id uint64, buf []byte) error { return w.P.ReadPage(PageID(id), buf) }

// WritePage implements wal.PageStore.
func (w WALStore) WritePage(id uint64, buf []byte) error { return w.P.WritePage(PageID(id), buf) }

// EnsurePages implements wal.PageStore.
func (w WALStore) EnsurePages(n uint64) error {
	type extender interface{ EnsurePages(uint64) error }
	if e, ok := w.P.(extender); ok {
		return e.EnsurePages(n)
	}
	for w.P.NumPages() < n {
		if _, err := w.P.Allocate(); err != nil {
			return err
		}
	}
	return nil
}

// PageSize implements wal.PageStore.
func (w WALStore) PageSize() int { return PageSize }
