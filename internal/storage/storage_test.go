package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testPagers(t *testing.T) map[string]Pager {
	t.Helper()
	fp, err := OpenFilePager(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fp.Close() })
	return map[string]Pager{"mem": NewMemPager(), "file": fp}
}

func TestPagerBasics(t *testing.T) {
	for name, p := range testPagers(t) {
		t.Run(name, func(t *testing.T) {
			id1, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			id2, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id1 == InvalidPage || id2 == InvalidPage || id1 == id2 {
				t.Fatalf("ids %d %d", id1, id2)
			}
			w := make([]byte, PageSize)
			copy(w, []byte("hello page"))
			if err := p.WritePage(id2, w); err != nil {
				t.Fatal(err)
			}
			r := make([]byte, PageSize)
			if err := p.ReadPage(id2, r); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r, w) {
				t.Fatal("read != write")
			}
			// Fresh pages are zeroed.
			if err := p.ReadPage(id1, r); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r, make([]byte, PageSize)) {
				t.Fatal("fresh page not zeroed")
			}
		})
	}
}

func TestPagerFreeReuse(t *testing.T) {
	for name, p := range testPagers(t) {
		t.Run(name, func(t *testing.T) {
			id1, _ := p.Allocate()
			id2, _ := p.Allocate()
			if err := p.Free(id1); err != nil {
				t.Fatal(err)
			}
			id3, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id3 != id1 {
				t.Fatalf("freed page not reused: got %d want %d", id3, id1)
			}
			// Reused page is zeroed.
			r := make([]byte, PageSize)
			if err := p.ReadPage(id3, r); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r, make([]byte, PageSize)) {
				t.Fatal("reused page not zeroed")
			}
			_ = id2
		})
	}
}

func TestPagerErrors(t *testing.T) {
	for name, p := range testPagers(t) {
		t.Run(name, func(t *testing.T) {
			buf := make([]byte, PageSize)
			if err := p.ReadPage(999, buf); err == nil {
				t.Error("read out of range must fail")
			}
			if err := p.WritePage(0, buf); err == nil {
				t.Error("write page 0 must fail")
			}
			if err := p.Free(999); err == nil {
				t.Error("free out of range must fail")
			}
		})
	}
}

func TestFilePagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	w := make([]byte, PageSize)
	copy(w, []byte("durable"))
	if err := p.WritePage(id, w); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.NumPages() != 2 {
		t.Fatalf("NumPages after reopen = %d", p2.NumPages())
	}
	r := make([]byte, PageSize)
	if err := p2.ReadPage(id, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("page not durable")
	}
}

func TestBufferPoolHitsAndEviction(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		f, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		copy(f.Data, []byte{byte(i + 1)})
		ids = append(ids, f.ID)
		bp.Unpin(f, true)
	}
	// Pool holds 2 frames; page ids[0] must have been evicted and written.
	st := bp.Stats()
	if st.Evictions == 0 || st.Writes == 0 {
		t.Fatalf("expected evictions: %v", st)
	}
	f, err := bp.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[0] != 1 {
		t.Fatalf("evicted page content lost: %d", f.Data[0])
	}
	bp.Unpin(f, false)
	st2 := bp.Stats()
	if st2.Reads == 0 {
		t.Fatalf("fetch after eviction must be a miss: %v", st2)
	}
	// Re-fetch is a hit.
	before := bp.Stats()
	f, _ = bp.Fetch(ids[0])
	bp.Unpin(f, false)
	d := bp.Stats().Sub(before)
	if d.Hits != 1 || d.Reads != 0 {
		t.Fatalf("expected pure hit: %v", d)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), 2)
	f1, _ := bp.Allocate()
	f2, _ := bp.Allocate()
	if _, err := bp.Allocate(); err == nil {
		t.Fatal("allocation with all frames pinned must fail")
	}
	bp.Unpin(f1, false)
	bp.Unpin(f2, false)
	if _, err := bp.Allocate(); err != nil {
		t.Fatalf("allocation after unpin: %v", err)
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	mp := NewMemPager()
	bp := NewBufferPool(mp, 8)
	f, _ := bp.Allocate()
	copy(f.Data, []byte("flushed"))
	id := f.ID
	bp.Unpin(f, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, PageSize)
	if err := mp.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("flushed")) {
		t.Fatal("FlushAll did not reach the pager")
	}
}

func TestBufferPoolFlushHookOrdering(t *testing.T) {
	mp := NewMemPager()
	bp := NewBufferPool(mp, 8)
	var hooked []PageID
	bp.FlushHook = func(id PageID, data []byte) error {
		hooked = append(hooked, id)
		return nil
	}
	f, _ := bp.Allocate()
	bp.Unpin(f, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0] != f.ID {
		t.Fatalf("flush hook calls: %v", hooked)
	}
}

func TestSlottedPageBasics(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf)
	s1, err := p.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := p.Read(s1); !ok || string(got) != "alpha" {
		t.Fatalf("read s1: %q %v", got, ok)
	}
	if got, ok := p.Read(s2); !ok || string(got) != "beta" {
		t.Fatalf("read s2: %q %v", got, ok)
	}
	if !p.Delete(s1) {
		t.Fatal("delete failed")
	}
	if _, ok := p.Read(s1); ok {
		t.Fatal("read after delete")
	}
	if p.Delete(s1) {
		t.Fatal("double delete must fail")
	}
	// Dead slot is reused.
	s3, err := p.Insert([]byte("gamma"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatalf("dead slot not reused: %d vs %d", s3, s1)
	}
}

// TestSlottedPageNextSlot: NextSlot predicts Insert's slot choice — fresh
// index, dead-slot reuse — without mutating the page.
func TestSlottedPageNextSlot(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf)
	if got := p.NextSlot(); got != 0 {
		t.Fatalf("empty page NextSlot %d", got)
	}
	before := append([]byte(nil), buf...)
	p.NextSlot()
	if !bytes.Equal(before, buf) {
		t.Fatal("NextSlot mutated the page")
	}
	s0, _ := p.Insert([]byte("a"))
	s1, _ := p.Insert([]byte("b"))
	if got := p.NextSlot(); got != s1+1 {
		t.Fatalf("NextSlot %d, want fresh %d", got, s1+1)
	}
	p.Delete(s0)
	if got := p.NextSlot(); got != s0 {
		t.Fatalf("NextSlot %d, want dead slot %d", got, s0)
	}
	s2, _ := p.Insert([]byte("c"))
	if s2 != s0 {
		t.Fatalf("Insert chose %d, NextSlot predicted %d", s2, s0)
	}
}

func TestSlottedPageUpdate(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf)
	s, _ := p.Insert([]byte("short"))
	if err := p.Update(s, []byte("st")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(s); string(got) != "st" {
		t.Fatalf("shrink update: %q", got)
	}
	if err := p.Update(s, bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(s); len(got) != 100 {
		t.Fatalf("grow update: %d", len(got))
	}
	if err := p.Update(99, []byte("y")); err == nil {
		t.Fatal("update of missing slot must fail")
	}
}

func TestSlottedPageFillAndCompact(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf)
	var slots []int
	payload := bytes.Repeat([]byte("z"), 64)
	for {
		s, err := p.Insert(payload)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 50 {
		t.Fatalf("page held only %d 64-byte tuples", len(slots))
	}
	// Delete every other tuple, then the freed space must be reusable via
	// compaction.
	for i := 0; i < len(slots); i += 2 {
		p.Delete(slots[i])
	}
	big := bytes.Repeat([]byte("B"), 200)
	if _, err := p.Insert(big); err != nil {
		t.Fatalf("insert after fragmentation: %v", err)
	}
	// Survivors intact after compaction.
	for i := 1; i < len(slots); i += 2 {
		got, ok := p.Read(slots[i])
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("survivor %d corrupted after compaction", slots[i])
		}
	}
}

func TestSlottedPageRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, PageSize)
	p := InitSlotted(buf)
	model := map[int][]byte{}
	for op := 0; op < 3000; op++ {
		switch rng.Intn(3) {
		case 0: // insert
			data := make([]byte, 1+rng.Intn(120))
			rng.Read(data)
			s, err := p.Insert(data)
			if err == nil {
				if _, exists := model[s]; exists {
					t.Fatalf("op %d: slot %d double-allocated", op, s)
				}
				model[s] = append([]byte(nil), data...)
			}
		case 1: // delete a random live slot
			for s := range model {
				if !p.Delete(s) {
					t.Fatalf("op %d: delete live slot %d failed", op, s)
				}
				delete(model, s)
				break
			}
		case 2: // update a random live slot
			for s := range model {
				data := make([]byte, 1+rng.Intn(120))
				rng.Read(data)
				if err := p.Update(s, data); err == nil {
					model[s] = append([]byte(nil), data...)
				}
				break
			}
		}
		// Verify all live slots every 100 ops.
		if op%100 == 0 {
			for s, want := range model {
				got, ok := p.Read(s)
				if !ok || !bytes.Equal(got, want) {
					t.Fatalf("op %d: slot %d mismatch", op, s)
				}
			}
		}
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Reads: 10, Writes: 5, Hits: 20, Fetches: 30, Evictions: 2}
	b := Stats{Reads: 4, Writes: 1, Hits: 15, Fetches: 19, Evictions: 1}
	d := a.Sub(b)
	if d.Reads != 6 || d.Writes != 4 || d.Hits != 5 || d.Fetches != 11 || d.Evictions != 1 {
		t.Fatalf("Sub: %+v", d)
	}
	if d.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestEndianHelpersProperty(t *testing.T) {
	f := func(v uint64) bool {
		var b [8]byte
		putBE64(b[:], v)
		return be64(b[:]) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v uint16) bool {
		var b [2]byte
		putBE16(b[:], v)
		return be16(b[:]) == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestPageLSN(t *testing.T) {
	buf := make([]byte, PageSize)
	p := InitSlotted(buf)
	p.SetPageLSN(0xDEADBEEF)
	if p.PageLSN() != 0xDEADBEEF {
		t.Fatal("page LSN round trip")
	}
	// LSN must survive inserts.
	if _, err := p.Insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if p.PageLSN() != 0xDEADBEEF {
		t.Fatal("insert clobbered page LSN")
	}
}

func BenchmarkBufferPoolFetchHit(b *testing.B) {
	bp := NewBufferPool(NewMemPager(), 64)
	f, _ := bp.Allocate()
	id := f.ID
	bp.Unpin(f, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := bp.Fetch(id)
		if err != nil {
			b.Fatal(err)
		}
		bp.Unpin(fr, false)
	}
}

func BenchmarkSlottedInsert(b *testing.B) {
	buf := make([]byte, PageSize)
	payload := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := InitSlotted(buf)
		for {
			if _, err := p.Insert(payload); err != nil {
				break
			}
		}
	}
}

var _ = fmt.Sprintf // keep fmt import if unused in some build configs
