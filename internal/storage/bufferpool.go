package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Stats counts page-level I/O through a buffer pool. All benchmark numbers
// (search I/O, insertion I/O) are reported from these counters.
type Stats struct {
	Reads     uint64 // physical page reads (misses)
	Writes    uint64 // physical page writes (evictions + flushes)
	Hits      uint64 // logical fetches satisfied from the pool
	Fetches   uint64 // all logical fetches
	Evictions uint64
}

// Sub returns the difference s - o, for measuring an operation window.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:     s.Reads - o.Reads,
		Writes:    s.Writes - o.Writes,
		Hits:      s.Hits - o.Hits,
		Fetches:   s.Fetches - o.Fetches,
		Evictions: s.Evictions - o.Evictions,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("fetches=%d hits=%d reads=%d writes=%d evictions=%d",
		s.Fetches, s.Hits, s.Reads, s.Writes, s.Evictions)
}

// ErrPoolFull is returned when every frame is pinned and a new page is
// requested.
var ErrPoolFull = errors.New("storage: buffer pool exhausted (all frames pinned)")

// Frame is a pinned page in the buffer pool. Data is valid until Unpin.
type Frame struct {
	ID    PageID
	Data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// BufferPool caches pages of one Pager with pin-counted LRU replacement.
// It is safe for concurrent use; callers serialise access to a frame's Data
// through higher-level latching (the engine latches at the tree/table level).
type BufferPool struct {
	mu       sync.Mutex
	pager    Pager
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // unpinned frames, most recent at front
	stats    Stats
	// FlushHook, when set, is called with (id, data) before a dirty page is
	// written back; the WAL installs itself here to honour write-ahead
	// ordering.
	FlushHook func(id PageID, data []byte) error
}

// NewBufferPool wraps pager with a pool of the given frame capacity.
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		pager:    pager,
		capacity: capacity,
		frames:   make(map[PageID]*Frame),
		lru:      list.New(),
	}
}

// Pager returns the underlying pager.
func (bp *BufferPool) Pager() Pager { return bp.pager }

// Stats returns a snapshot of the I/O counters.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the I/O counters (benchmark harness use).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
}

// Allocate allocates a fresh page and returns it pinned and dirty.
func (bp *BufferPool) Allocate() (*Frame, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.ensureRoom(); err != nil {
		return nil, err
	}
	f := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1, dirty: true}
	bp.frames[id] = f
	return f, nil
}

// Fetch pins the page, reading it from the pager on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	bp.mu.Lock()
	bp.stats.Fetches++
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		if f.pins == 0 && f.elem != nil {
			bp.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		bp.mu.Unlock()
		return f, nil
	}
	if err := bp.ensureRoom(); err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	bp.stats.Reads++
	f := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1}
	bp.frames[id] = f
	// Read outside the lock would race with a concurrent Fetch of the same
	// page; the read is cheap relative to simplicity, so keep the lock.
	err := bp.pager.ReadPage(id, f.Data)
	if err != nil {
		delete(bp.frames, id)
		bp.mu.Unlock()
		return nil, err
	}
	bp.mu.Unlock()
	return f, nil
}

// Unpin releases one pin; dirty marks the frame as modified.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
	if f.pins == 0 {
		f.elem = bp.lru.PushFront(f)
	}
}

// ensureRoom evicts the least recently used unpinned frame when the pool is
// at capacity. Caller holds bp.mu.
func (bp *BufferPool) ensureRoom() error {
	for len(bp.frames) >= bp.capacity {
		back := bp.lru.Back()
		if back == nil {
			return ErrPoolFull
		}
		victim := back.Value.(*Frame)
		bp.lru.Remove(back)
		victim.elem = nil
		if victim.dirty {
			if err := bp.flushLocked(victim); err != nil {
				return err
			}
		}
		delete(bp.frames, victim.ID)
		bp.stats.Evictions++
	}
	return nil
}

func (bp *BufferPool) flushLocked(f *Frame) error {
	if bp.FlushHook != nil {
		if err := bp.FlushHook(f.ID, f.Data); err != nil {
			return err
		}
	}
	bp.stats.Writes++
	if err := bp.pager.WritePage(f.ID, f.Data); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

// FlushAll writes every dirty frame back to the pager.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			if err := bp.flushLocked(f); err != nil {
				return err
			}
		}
	}
	return bp.pager.Sync()
}

// Free flushes nothing and returns the page to the pager's free list; the
// page must be unpinned.
func (bp *BufferPool) Free(id PageID) error {
	bp.mu.Lock()
	if f, ok := bp.frames[id]; ok {
		if f.pins > 0 {
			bp.mu.Unlock()
			return fmt.Errorf("storage: freeing pinned page %d", id)
		}
		if f.elem != nil {
			bp.lru.Remove(f.elem)
		}
		delete(bp.frames, id)
	}
	bp.mu.Unlock()
	return bp.pager.Free(id)
}

// Close flushes and closes the underlying pager.
func (bp *BufferPool) Close() error {
	if err := bp.FlushAll(); err != nil {
		bp.pager.Close()
		return err
	}
	return bp.pager.Close()
}
