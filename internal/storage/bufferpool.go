package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Stats counts page-level I/O through a buffer pool. All benchmark numbers
// (search I/O, insertion I/O) are reported from these counters.
type Stats struct {
	Reads     uint64 // physical page reads (misses)
	Writes    uint64 // physical page writes (evictions + flushes)
	Hits      uint64 // logical fetches satisfied from the pool
	Fetches   uint64 // all logical fetches
	Evictions uint64
}

// Sub returns the difference s - o, for measuring an operation window.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:     s.Reads - o.Reads,
		Writes:    s.Writes - o.Writes,
		Hits:      s.Hits - o.Hits,
		Fetches:   s.Fetches - o.Fetches,
		Evictions: s.Evictions - o.Evictions,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("fetches=%d hits=%d reads=%d writes=%d evictions=%d",
		s.Fetches, s.Hits, s.Reads, s.Writes, s.Evictions)
}

// ErrPoolFull is returned when every frame of the page's shard is pinned
// and a new page is requested.
var ErrPoolFull = errors.New("storage: buffer pool exhausted (all frames pinned)")

// Frame is a pinned page in the buffer pool. Data is valid until Unpin.
//
// The embedded latch protects Data for components whose readers run without
// any higher-level lock: MVCC heap scans read pages concurrently with
// writers, so heap mutators hold the write latch over their Data edits and
// heap readers the read latch over decoding. Components that serialise page
// access externally (the tree blades under their large-object locks) may
// skip the latch; the pool's own flusher takes the read latch so eviction
// and checkpoint writes never race a latching writer.
type Frame struct {
	ID    PageID
	Data  []byte
	pins  int
	dirty bool
	elem  *list.Element
	latch sync.RWMutex
}

// Latch acquires the frame's write latch (exclusive access to Data).
func (f *Frame) Latch() { f.latch.Lock() }

// Unlatch releases the write latch.
func (f *Frame) Unlatch() { f.latch.Unlock() }

// RLatch acquires the frame's read latch (shared access to Data).
func (f *Frame) RLatch() { f.latch.RLock() }

// RUnlatch releases the read latch.
func (f *Frame) RUnlatch() { f.latch.RUnlock() }

// shard is one independently locked partition of the pool: its own frame
// table, its own LRU list, its own mutex. Pages are assigned to shards by a
// PageID hash, so concurrent scans over disjoint page sets never contend.
type shard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // unpinned frames, most recent at front
}

// BufferPool caches pages of one Pager with pin-counted LRU replacement.
// The pool is split into shards (each with its own mutex and LRU) so that
// concurrent batched scans from multiple sessions do not serialise on a
// single global lock; I/O counters are atomic and never taken under any
// shard mutex. Callers serialise access to a frame's Data through
// higher-level latching (the engine latches at the tree/table level).
type BufferPool struct {
	pager  Pager
	shards []*shard

	reads, writes, hits, fetches, evictions atomic.Uint64
	obs                                     ObsCounters

	// unsynced is set when a page write reached the pager without a
	// following Sync (evictions write lazily); FlushAll uses it to skip the
	// pager fsync when the pool is fully clean, which keeps the background
	// checkpointer's sweep over idle pools free.
	unsynced atomic.Bool

	// FlushHook, when set, is called with (id, data) before a dirty page is
	// written back; the WAL installs itself here to honour write-ahead
	// ordering. Set it before the pool sees concurrent use.
	FlushHook func(id PageID, data []byte) error
}

// ObsCounters mirrors the pool's I/O counters into an obs registry, so an
// engine aggregates all of its pools under one set of metrics. Nil fields
// are no-ops (obs.Counter is nil-safe); the mirrored counts are incremented
// at exactly the sites that feed Stats, so the two views stay bit-identical.
type ObsCounters struct {
	Fetches, Hits, Reads, Writes, Evictions *obs.Counter
}

// SetObs attaches mirror counters. Call before the pool sees concurrent use.
func (bp *BufferPool) SetObs(o ObsCounters) { bp.obs = o }

// defaultShards picks the shard count for a capacity: pools below 128
// frames stay single-shard (exact global-LRU semantics, which the
// experiment harnesses with tiny pools rely on), larger pools get one
// shard per 64 frames up to 8.
func defaultShards(capacity int) int {
	if capacity < 128 {
		return 1
	}
	n := capacity / 64
	if n > 8 {
		n = 8
	}
	return n
}

// NewBufferPool wraps pager with a pool of the given frame capacity,
// sharded by the default heuristic (small pools stay single-shard).
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	return NewShardedBufferPool(pager, capacity, defaultShards(max(capacity, 1)))
}

// NewShardedBufferPool wraps pager with an explicit shard count; capacity
// is the total frame budget, divided evenly across shards.
func NewShardedBufferPool(pager Pager, capacity, shards int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	bp := &BufferPool{pager: pager, shards: make([]*shard, shards)}
	per := capacity / shards
	extra := capacity % shards
	for i := range bp.shards {
		c := per
		if i < extra {
			c++
		}
		bp.shards[i] = &shard{
			capacity: c,
			frames:   make(map[PageID]*Frame),
			lru:      list.New(),
		}
	}
	return bp
}

// shardFor maps a page to its shard (Fibonacci hash so that both
// sequential and clustered PageID patterns spread evenly).
func (bp *BufferPool) shardFor(id PageID) *shard {
	if len(bp.shards) == 1 {
		return bp.shards[0]
	}
	h := uint64(id) * 0x9E3779B97F4A7C15
	return bp.shards[(h>>32)%uint64(len(bp.shards))]
}

// Pager returns the underlying pager.
func (bp *BufferPool) Pager() Pager { return bp.pager }

// Shards returns the number of independently locked pool partitions.
func (bp *BufferPool) Shards() int { return len(bp.shards) }

// Stats returns a snapshot of the I/O counters (atomic; callable
// concurrently with fetches without taking any pool lock).
func (bp *BufferPool) Stats() Stats {
	return Stats{
		Reads:     bp.reads.Load(),
		Writes:    bp.writes.Load(),
		Hits:      bp.hits.Load(),
		Fetches:   bp.fetches.Load(),
		Evictions: bp.evictions.Load(),
	}
}

// ResetStats zeroes the I/O counters (benchmark harness use).
func (bp *BufferPool) ResetStats() {
	bp.reads.Store(0)
	bp.writes.Store(0)
	bp.hits.Store(0)
	bp.fetches.Store(0)
	bp.evictions.Store(0)
}

// Allocate allocates a fresh page and returns it pinned and dirty.
func (bp *BufferPool) Allocate() (*Frame, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return nil, err
	}
	sh := bp.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := bp.ensureRoom(sh); err != nil {
		return nil, err
	}
	f := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1, dirty: true}
	sh.frames[id] = f
	return f, nil
}

// Fetch pins the page, reading it from the pager on a miss. Only the
// page's shard is locked — fetches on different shards proceed in
// parallel.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	sh := bp.shardFor(id)
	bp.fetches.Add(1)
	bp.obs.Fetches.Inc()
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		bp.hits.Add(1)
		bp.obs.Hits.Inc()
		if f.pins == 0 && f.elem != nil {
			sh.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		sh.mu.Unlock()
		return f, nil
	}
	if err := bp.ensureRoom(sh); err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	bp.reads.Add(1)
	bp.obs.Reads.Inc()
	f := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1}
	sh.frames[id] = f
	// Read inside the shard lock: releasing it here would race with a
	// concurrent Fetch of the same page; the read is cheap relative to
	// simplicity, and only this shard is held up.
	err := bp.pager.ReadPage(id, f.Data)
	if err != nil {
		delete(sh.frames, id)
		sh.mu.Unlock()
		return nil, err
	}
	sh.mu.Unlock()
	return f, nil
}

// Unpin releases one pin; dirty marks the frame as modified.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	sh := bp.shardFor(f.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
	if f.pins == 0 {
		f.elem = sh.lru.PushFront(f)
	}
}

// ensureRoom evicts the least recently used unpinned frame when the shard
// is at capacity. Caller holds sh.mu.
func (bp *BufferPool) ensureRoom(sh *shard) error {
	for len(sh.frames) >= sh.capacity {
		back := sh.lru.Back()
		if back == nil {
			return ErrPoolFull
		}
		victim := back.Value.(*Frame)
		sh.lru.Remove(back)
		victim.elem = nil
		if victim.dirty {
			if err := bp.flushLocked(victim); err != nil {
				return err
			}
		}
		delete(sh.frames, victim.ID)
		bp.evictions.Add(1)
		bp.obs.Evictions.Inc()
	}
	return nil
}

// flushLocked writes one dirty frame back. Caller holds the frame's shard
// mutex (stat counters are atomic, not shard state). The frame's read latch
// is taken around the write so a latching mutator never races the flush;
// this cannot deadlock because latch holders release the latch before
// re-entering the pool (Unpin).
func (bp *BufferPool) flushLocked(f *Frame) error {
	f.latch.RLock()
	defer f.latch.RUnlock()
	if bp.FlushHook != nil {
		if err := bp.FlushHook(f.ID, f.Data); err != nil {
			return err
		}
	}
	bp.writes.Add(1)
	bp.obs.Writes.Inc()
	if err := bp.pager.WritePage(f.ID, f.Data); err != nil {
		return err
	}
	f.dirty = false
	bp.unsynced.Store(true)
	return nil
}

// FlushAll writes every dirty frame back to the pager and syncs it. The
// sync is skipped when no write has reached the pager since the last
// FlushAll, so sweeping a clean pool costs no I/O.
func (bp *BufferPool) FlushAll() error {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				if err := bp.flushLocked(f); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
		}
		sh.mu.Unlock()
	}
	if !bp.unsynced.Swap(false) {
		return nil
	}
	if err := bp.pager.Sync(); err != nil {
		bp.unsynced.Store(true)
		return err
	}
	return nil
}

// Free flushes nothing and returns the page to the pager's free list; the
// page must be unpinned.
func (bp *BufferPool) Free(id PageID) error {
	sh := bp.shardFor(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		if f.pins > 0 {
			sh.mu.Unlock()
			return fmt.Errorf("storage: freeing pinned page %d", id)
		}
		if f.elem != nil {
			sh.lru.Remove(f.elem)
		}
		delete(sh.frames, id)
	}
	sh.mu.Unlock()
	return bp.pager.Free(id)
}

// Close flushes and closes the underlying pager.
func (bp *BufferPool) Close() error {
	if err := bp.FlushAll(); err != nil {
		bp.pager.Close()
		return err
	}
	return bp.pager.Close()
}
