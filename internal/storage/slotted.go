package storage

import "fmt"

// Slotted page layout, used by heap tables and the catalog:
//
//	[0:8)   page LSN (WAL recovery)
//	[8:10)  number of slots
//	[10:12) free-space start (end of slot array)
//	[12:14) free-space end (start of cell area)
//	[14:16) flags (unused)
//	slot i: [16+4i : 16+4i+4) = offset(2) | length(2); offset 0 = dead slot
//
// Cells grow downward from the end of the page.

const (
	slottedHeader = 16
	slotSize      = 4
)

// SlottedPage wraps a page buffer with slotted-tuple accessors. It does not
// own the buffer.
type SlottedPage struct{ Buf []byte }

// InitSlotted formats the buffer as an empty slotted page.
func InitSlotted(buf []byte) SlottedPage {
	p := SlottedPage{Buf: buf}
	p.setNumSlots(0)
	p.setFreeStart(slottedHeader)
	p.setFreeEnd(uint16(len(buf)))
	return p
}

// PageLSN returns the recovery LSN stored in the page header.
func (p SlottedPage) PageLSN() uint64 { return be64(p.Buf[0:8]) }

// SetPageLSN stores the recovery LSN.
func (p SlottedPage) SetPageLSN(lsn uint64) { putBE64(p.Buf[0:8], lsn) }

func (p SlottedPage) numSlots() int       { return int(be16(p.Buf[8:10])) }
func (p SlottedPage) setNumSlots(n int)   { putBE16(p.Buf[8:10], uint16(n)) }
func (p SlottedPage) freeStart() int      { return int(be16(p.Buf[10:12])) }
func (p SlottedPage) setFreeStart(v int)  { putBE16(p.Buf[10:12], uint16(v)) }
func (p SlottedPage) freeEnd() int        { return int(be16(p.Buf[12:14])) }
func (p SlottedPage) setFreeEnd(v uint16) { putBE16(p.Buf[12:14], v) }

func (p SlottedPage) slot(i int) (off, length int) {
	base := slottedHeader + slotSize*i
	return int(be16(p.Buf[base : base+2])), int(be16(p.Buf[base+2 : base+4]))
}

func (p SlottedPage) setSlot(i, off, length int) {
	base := slottedHeader + slotSize*i
	putBE16(p.Buf[base:base+2], uint16(off))
	putBE16(p.Buf[base+2:base+4], uint16(length))
}

// NumSlots returns the slot count, including dead slots.
func (p SlottedPage) NumSlots() int { return p.numSlots() }

// FreeSpace returns the bytes available for one more insert (accounting for
// its slot entry).
func (p SlottedPage) FreeSpace() int {
	free := p.freeEnd() - p.freeStart() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// NextSlot returns the slot number Insert would assign — the first dead
// slot when one exists, the fresh index otherwise — without mutating the
// page. Callers with bounded slot-number encodings check it before Insert.
func (p SlottedPage) NextSlot() int {
	for i := 0; i < p.numSlots(); i++ {
		if off, _ := p.slot(i); off == 0 {
			return i
		}
	}
	return p.numSlots()
}

// Insert stores data in the page and returns its slot number.
func (p SlottedPage) Insert(data []byte) (int, error) {
	if len(data) > p.FreeSpace() {
		if len(data) <= p.FreeSpace()+p.fragmented() {
			p.compact()
		} else {
			return 0, fmt.Errorf("storage: slotted page full (%d free, %d needed)", p.FreeSpace(), len(data))
		}
	}
	// Reuse a dead slot when available.
	slot := -1
	for i := 0; i < p.numSlots(); i++ {
		if off, _ := p.slot(i); off == 0 {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = p.numSlots()
		p.setNumSlots(slot + 1)
		p.setFreeStart(p.freeStart() + slotSize)
	}
	off := p.freeEnd() - len(data)
	copy(p.Buf[off:], data)
	p.setFreeEnd(uint16(off))
	p.setSlot(slot, off, len(data))
	return slot, nil
}

// Read returns the tuple bytes at slot (aliasing the page buffer).
func (p SlottedPage) Read(slot int) ([]byte, bool) {
	if slot < 0 || slot >= p.numSlots() {
		return nil, false
	}
	off, length := p.slot(slot)
	if off == 0 {
		return nil, false
	}
	return p.Buf[off : off+length], true
}

// Delete marks the slot dead; its space is reclaimed by compaction.
func (p SlottedPage) Delete(slot int) bool {
	if slot < 0 || slot >= p.numSlots() {
		return false
	}
	if off, _ := p.slot(slot); off == 0 {
		return false
	}
	p.setSlot(slot, 0, 0)
	return true
}

// Update replaces the tuple at slot, keeping the slot number stable.
func (p SlottedPage) Update(slot int, data []byte) error {
	if slot < 0 || slot >= p.numSlots() {
		return fmt.Errorf("storage: update of missing slot %d", slot)
	}
	off, length := p.slot(slot)
	if off == 0 {
		return fmt.Errorf("storage: update of dead slot %d", slot)
	}
	if len(data) <= length {
		copy(p.Buf[off:], data)
		p.setSlot(slot, off, len(data))
		return nil
	}
	// Relocate within the page.
	p.setSlot(slot, 0, 0)
	need := len(data)
	if need > p.freeEnd()-p.freeStart() {
		if need <= p.freeEnd()-p.freeStart()+p.fragmented() {
			p.compact()
		} else {
			p.setSlot(slot, off, length) // restore
			return fmt.Errorf("storage: slotted page full for update")
		}
	}
	noff := p.freeEnd() - len(data)
	copy(p.Buf[noff:], data)
	p.setFreeEnd(uint16(noff))
	p.setSlot(slot, noff, len(data))
	return nil
}

// fragmented returns the bytes held by dead cells below freeEnd.
func (p SlottedPage) fragmented() int {
	used := 0
	for i := 0; i < p.numSlots(); i++ {
		if off, length := p.slot(i); off != 0 {
			used += length
		}
	}
	return len(p.Buf) - p.freeEnd() - used
}

// compact rewrites live cells contiguously at the end of the page.
func (p SlottedPage) compact() {
	type live struct{ slot, off, length int }
	var cells []live
	for i := 0; i < p.numSlots(); i++ {
		if off, length := p.slot(i); off != 0 {
			cells = append(cells, live{i, off, length})
		}
	}
	tmp := make([]byte, len(p.Buf))
	end := len(p.Buf)
	for _, c := range cells {
		end -= c.length
		copy(tmp[end:], p.Buf[c.off:c.off+c.length])
		p.setSlot(c.slot, end, c.length)
	}
	copy(p.Buf[end:], tmp[end:])
	p.setFreeEnd(uint16(end))
}

func be16(b []byte) uint16       { return uint16(b[0])<<8 | uint16(b[1]) }
func putBE16(b []byte, v uint16) { b[0], b[1] = byte(v>>8), byte(v) }
