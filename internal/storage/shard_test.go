package storage

import (
	"sync"
	"testing"
)

// TestShardHeuristic: small pools keep the exact single-LRU semantics the
// experiment harnesses rely on; server-sized pools split into shards.
func TestShardHeuristic(t *testing.T) {
	cases := []struct{ capacity, shards int }{
		{1, 1}, {2, 1}, {64, 1}, {127, 1},
		{128, 2}, {256, 4}, {512, 8}, {4096, 8},
	}
	for _, c := range cases {
		bp := NewBufferPool(NewMemPager(), c.capacity)
		if got := bp.Shards(); got != c.shards {
			t.Errorf("capacity %d: %d shards, want %d", c.capacity, got, c.shards)
		}
	}
}

// TestShardedCapacitySplit: the frame budget is divided across shards
// without loss.
func TestShardedCapacitySplit(t *testing.T) {
	bp := NewShardedBufferPool(NewMemPager(), 10, 4)
	total := 0
	for _, sh := range bp.shards {
		if sh.capacity < 2 || sh.capacity > 3 {
			t.Fatalf("uneven shard capacity %d", sh.capacity)
		}
		total += sh.capacity
	}
	if total != 10 {
		t.Fatalf("shard capacities sum to %d, want 10", total)
	}
}

// TestShardedPoolConcurrentFetch: many goroutines hammering fetch/unpin
// across all shards — run under -race by `make check`. Fetches must always
// equal hits + physical reads, whatever the interleaving.
func TestShardedPoolConcurrentFetch(t *testing.T) {
	pager := NewMemPager()
	bp := NewShardedBufferPool(pager, 64, 4)
	var ids []PageID
	for i := 0; i < 128; i++ {
		f, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID)
		bp.Unpin(f, true)
	}
	bp.ResetStats()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(seed*37+i)%len(ids)]
				f, err := bp.Fetch(id)
				if err != nil {
					errs <- err
					return
				}
				if f.ID != id {
					errs <- ErrPoolFull // any sentinel; checked below
					return
				}
				bp.Unpin(f, false)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent fetch: %v", err)
	}
	st := bp.Stats()
	if st.Fetches != workers*500 {
		t.Fatalf("fetches = %d, want %d", st.Fetches, workers*500)
	}
	if st.Fetches != st.Hits+st.Reads {
		t.Fatalf("fetches (%d) != hits (%d) + reads (%d)", st.Fetches, st.Hits, st.Reads)
	}
}

// TestStatsConcurrentWithFetch: the satellite race fix — Stats() and
// ResetStats() are atomic snapshots, callable while other sessions fetch
// (the benchmark harness reads counters mid-run).
func TestStatsConcurrentWithFetch(t *testing.T) {
	bp := NewBufferPool(NewMemPager(), 256)
	f, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID
	bp.Unpin(f, true)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			fr, err := bp.Fetch(id)
			if err != nil {
				return
			}
			bp.Unpin(fr, false)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = bp.Stats()
		if i%100 == 0 {
			bp.ResetStats()
		}
	}
	close(stop)
	wg.Wait()
	st := bp.Stats()
	if st.Fetches < st.Hits {
		t.Fatalf("inconsistent snapshot: %v", st)
	}
}
