// Package storage provides the page-oriented storage substrate of the
// engine: pagers (file-backed and in-memory), a pinning buffer pool with
// LRU replacement and I/O statistics, and slotted data pages. Heap tables,
// sbspaces (and therefore every virtual index stored in them), and the
// system catalogs all sit on this layer; the I/O counters it maintains are
// the measurements reported by the benchmark harness.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the size of every page in bytes. A GR-tree or R*-tree node
// occupies exactly one page (Section 3: "a node ... is stored in one disk
// page").
const PageSize = 4096

// PageID identifies a page within one pager. Page 0 is reserved by every
// pager for its own metadata; callers receive IDs starting at 1.
type PageID uint64

// InvalidPage is the zero PageID, never handed out for data.
const InvalidPage PageID = 0

// ErrPageOutOfRange is returned for reads or writes past the allocated end.
var ErrPageOutOfRange = errors.New("storage: page out of range")

// Pager is the raw page store interface: fixed-size page allocation, reads,
// writes, and a free list.
type Pager interface {
	// Allocate returns a zeroed page, reusing freed pages when possible.
	Allocate() (PageID, error)
	// ReadPage fills buf (len PageSize) with the page's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (len PageSize) as the page's contents.
	WritePage(id PageID, buf []byte) error
	// Free returns a page to the free list.
	Free(id PageID) error
	// NumPages returns the number of pages ever allocated (upper bound on
	// live pages).
	NumPages() uint64
	// Sync forces durable storage, where applicable.
	Sync() error
	// Close releases the pager.
	Close() error
}

// MemPager is an in-memory pager, used by tests, benchmarks, and transient
// spaces.
type MemPager struct {
	mu    sync.Mutex
	pages [][]byte
	free  []PageID
}

// NewMemPager returns an empty in-memory pager.
func NewMemPager() *MemPager {
	return &MemPager{pages: make([][]byte, 1)} // page 0 reserved
}

// Allocate implements Pager.
func (m *MemPager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		m.pages[id] = make([]byte, PageSize)
		return id, nil
	}
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

// ReadPage implements Pager.
func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) <= 0 || int(id) >= len(m.pages) || m.pages[id] == nil {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Pager.
func (m *MemPager) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) <= 0 || int(id) >= len(m.pages) || m.pages[id] == nil {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	copy(m.pages[id], buf)
	return nil
}

// Free implements Pager.
func (m *MemPager) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) <= 0 || int(id) >= len(m.pages) || m.pages[id] == nil {
		return fmt.Errorf("%w: free %d", ErrPageOutOfRange, id)
	}
	m.pages[id] = nil
	m.free = append(m.free, id)
	return nil
}

// NumPages implements Pager.
func (m *MemPager) NumPages() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(len(m.pages))
}

// Sync implements Pager (a no-op in memory).
func (m *MemPager) Sync() error { return nil }

// Close implements Pager.
func (m *MemPager) Close() error { return nil }

// FilePager stores pages in a single operating-system file. Page 0 holds the
// pager header (magic, page count, free-list head); freed pages are chained
// through their first 8 bytes.
type FilePager struct {
	mu       sync.Mutex
	f        *os.File
	numPages uint64 // including page 0
	freeHead PageID
}

const filePagerMagic = 0x47525442 // "GRTB"

// OpenFilePager opens or creates a file-backed pager at path.
func OpenFilePager(path string) (*FilePager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open pager: %w", err)
	}
	p := &FilePager{f: f}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		p.numPages = 1
		if err := p.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	var hdr [PageSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil && err != io.EOF {
		f.Close()
		return nil, err
	}
	if be32(hdr[0:4]) != filePagerMagic {
		f.Close()
		return nil, fmt.Errorf("storage: %s is not a pager file", path)
	}
	p.numPages = be64(hdr[8:16])
	p.freeHead = PageID(be64(hdr[16:24]))
	return p, nil
}

func (p *FilePager) writeHeader() error {
	var hdr [PageSize]byte
	putBE32(hdr[0:4], filePagerMagic)
	putBE64(hdr[8:16], p.numPages)
	putBE64(hdr[16:24], uint64(p.freeHead))
	_, err := p.f.WriteAt(hdr[:], 0)
	return err
}

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	zero := make([]byte, PageSize)
	if p.freeHead != InvalidPage {
		id := p.freeHead
		var buf [8]byte
		if _, err := p.f.ReadAt(buf[:], int64(id)*PageSize); err != nil {
			return InvalidPage, err
		}
		p.freeHead = PageID(be64(buf[:]))
		if _, err := p.f.WriteAt(zero, int64(id)*PageSize); err != nil {
			return InvalidPage, err
		}
		return id, p.writeHeader()
	}
	id := PageID(p.numPages)
	p.numPages++
	if _, err := p.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return InvalidPage, err
	}
	return id, p.writeHeader()
}

// ReadPage implements Pager.
func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == InvalidPage || uint64(id) >= p.numPages {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, p.numPages)
	}
	_, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Pager.
func (p *FilePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == InvalidPage || uint64(id) >= p.numPages {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, p.numPages)
	}
	_, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// Free implements Pager.
func (p *FilePager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == InvalidPage || uint64(id) >= p.numPages {
		return fmt.Errorf("%w: free %d", ErrPageOutOfRange, id)
	}
	var buf [8]byte
	putBE64(buf[:], uint64(p.freeHead))
	if _, err := p.f.WriteAt(buf[:], int64(id)*PageSize); err != nil {
		return err
	}
	p.freeHead = id
	return p.writeHeader()
}

// NumPages implements Pager.
func (p *FilePager) NumPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages
}

// Sync implements Pager.
func (p *FilePager) Sync() error { return p.f.Sync() }

// Close implements Pager.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.writeHeader(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putBE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func be64(b []byte) uint64 {
	return uint64(be32(b[0:4]))<<32 | uint64(be32(b[4:8]))
}

func putBE64(b []byte, v uint64) {
	putBE32(b[0:4], uint32(v>>32))
	putBE32(b[4:8], uint32(v))
}
