// Package catalog implements the system catalogs: SYSTABLES, SYSPROCEDURES
// (CREATE FUNCTION), SYSAMS (CREATE SECONDARY ACCESS_METHOD), SYSOPCLASSES
// (CREATE OPCLASS), SYSINDICES/SYSFRAGMENTS (CREATE INDEX), and the sbspace
// registry (the onspaces analogue). DDL statements mutate it; the optimizer
// and the access-method framework read it (Section 4, Step 3: "The CREATE
// SECONDARY ACCESS_METHOD statement enters access method information into
// the system catalog table SYSAMS").
package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/am"
)

// Column is one table column.
type Column struct {
	Name     string
	TypeName string
}

// Table is a SYSTABLES entry.
type Table struct {
	Name    string
	Columns []Column
	// SpaceID is the WAL space id of the table's pager.
	SpaceID uint32
}

// Procedure is a SYSPROCEDURES entry: a UDR registered with CREATE FUNCTION.
type Procedure struct {
	Name     string
	ArgTypes []string
	Returns  string
	External string // "library(symbol)"
	Language string
}

// ParseExternal splits "usr/functions/grtree.bld(grt_open)" into library
// and symbol.
func (p Procedure) ParseExternal() (lib, symbol string, err error) {
	open := strings.IndexByte(p.External, '(')
	if open < 0 || !strings.HasSuffix(p.External, ")") {
		return "", "", fmt.Errorf("catalog: malformed EXTERNAL NAME %q", p.External)
	}
	return p.External[:open], p.External[open+1 : len(p.External)-1], nil
}

// AccessMethod is a SYSAMS entry.
type AccessMethod struct {
	Name   string
	Slots  map[string]string // am_* slot -> registered function name
	SpType string            // "S" = sbspace
}

// OpClass is a SYSOPCLASSES entry.
type OpClass struct {
	Name       string
	AmName     string
	Strategies []string
	Support    []string
	Default    bool
}

// Index states (SYSINDICES.State). An empty state means READY — catalogs
// persisted before online builds existed carry no state field.
const (
	// IndexReady is a fully built, published index: the planner may use it
	// and DML maintains it directly.
	IndexReady = "READY"
	// IndexBuilding is an index whose online build is in flight: invisible
	// to the planner, maintained through the build's side log only.
	IndexBuilding = "BUILDING"
)

// Index is a SYSINDICES entry.
type Index struct {
	Name      string
	TableName string
	Columns   []string
	OpClasses []string
	AmName    string
	SpaceName string
	Params    map[string]string
	// State is the index lifecycle state (IndexReady/IndexBuilding);
	// "" is read as READY for back-compat.
	State string `json:",omitempty"`
}

// Ready reports whether the index is published ("" is READY).
func (ix *Index) Ready() bool { return ix.State == "" || ix.State == IndexReady }

// Sbspace is a registered smart-blob space.
type Sbspace struct {
	Name string
	ID   uint32
}

// Catalog is the full system catalog. It is safe for concurrent use.
type Catalog struct {
	mu sync.RWMutex

	// gen counts catalog mutations. Every DDL bump invalidates shared-plan
	// -cache entries stamped with an older generation. Deliberately not
	// persisted: the plan cache is process-local and starts empty, so a
	// restart resetting the counter to zero is safe.
	gen atomic.Uint64

	Tables   map[string]*Table
	Procs    map[string]*Procedure
	Ams      map[string]*AccessMethod
	OpCls    map[string]*OpClass
	Indices  map[string]*Index
	Sbspaces map[string]*Sbspace

	// AmRecords is "the table associated with the access method" in which
	// grt_create records the index's large-object handle (Appendix A,
	// grt_create step 6 / grt_open step 3). Keys are "am|index".
	AmRecords map[string][]byte

	// Stats is SYSSTATS: per-table collected statistics (UPDATE STATISTICS),
	// keyed by lower table name. Each record is stamped with the catalog
	// generation at collection so plan-cache entries and EXPLAIN can tell
	// fresh statistics from stale ones.
	Stats map[string]*TableStats

	NextSpaceID uint32

	path string // persistence file; empty = memory only
}

// New returns an empty catalog, persisted under dir when dir is non-empty.
func New(dir string) *Catalog {
	c := &Catalog{
		Tables:   make(map[string]*Table),
		Procs:    make(map[string]*Procedure),
		Ams:      make(map[string]*AccessMethod),
		OpCls:    make(map[string]*OpClass),
		Indices:  make(map[string]*Index),
		Sbspaces: make(map[string]*Sbspace),

		AmRecords: make(map[string][]byte),
		Stats:     make(map[string]*TableStats),

		NextSpaceID: 1,
	}
	if dir != "" {
		c.path = filepath.Join(dir, "catalog.json")
	}
	return c
}

// Load reads the catalog from dir (or returns an empty one when absent).
func Load(dir string) (*Catalog, error) {
	c := New(dir)
	if c.path == "" {
		return c, nil
	}
	raw, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, c); err != nil {
		return nil, fmt.Errorf("catalog: corrupt %s: %w", c.path, err)
	}
	return c, nil
}

// Save persists the catalog (a no-op for memory catalogs).
func (c *Catalog) Save() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.path == "" {
		return nil
	}
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

func key(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// generation ----------------------------------------------------------------

// Generation returns the current catalog generation. Plans cache it at plan
// time; a mismatch at lookup time marks the plan stale.
func (c *Catalog) Generation() uint64 { return c.gen.Load() }

// BumpGeneration advances the catalog generation. Every mutating DDL path
// calls it (directly or through the Add/Drop helpers); the engine also
// bumps it for in-place state flips such as an online build publishing an
// index or UPDATE STATISTICS refreshing am_stats.
func (c *Catalog) BumpGeneration() { c.gen.Add(1) }

// errors -------------------------------------------------------------------

func exists(kind, name string) error  { return fmt.Errorf("catalog: %s %q already exists", kind, name) }
func missing(kind, name string) error { return fmt.Errorf("catalog: %s %q does not exist", kind, name) }

// tables --------------------------------------------------------------------

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.Tables[key(t.Name)]; dup {
		return exists("table", t.Name)
	}
	c.Tables[key(t.Name)] = t
	c.gen.Add(1)
	return nil
}

// TableByName fetches a table.
func (c *Catalog) TableByName(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.Tables[key(name)]
	if !ok {
		return nil, missing("table", name)
	}
	return t, nil
}

// DropTable removes a table; indexes on it must already be gone.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.Tables[key(name)]; !ok {
		return missing("table", name)
	}
	for _, ix := range c.Indices {
		if key(ix.TableName) == key(name) {
			return fmt.Errorf("catalog: table %q still has index %q", name, ix.Name)
		}
	}
	delete(c.Tables, key(name))
	delete(c.Stats, key(name))
	c.gen.Add(1)
	return nil
}

// ColumnIndex returns a column's ordinal.
func (t *Table) ColumnIndex(col string) (int, error) {
	for i, cl := range t.Columns {
		if strings.EqualFold(cl.Name, col) {
			return i, nil
		}
	}
	return -1, fmt.Errorf("catalog: table %q has no column %q", t.Name, col)
}

// procedures -----------------------------------------------------------------

// AddProcedure registers a UDR (CREATE FUNCTION).
func (c *Catalog) AddProcedure(p *Procedure) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.Procs[key(p.Name)]; dup {
		return exists("function", p.Name)
	}
	c.Procs[key(p.Name)] = p
	c.gen.Add(1)
	return nil
}

// ProcByName fetches a UDR.
func (c *Catalog) ProcByName(name string) (*Procedure, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.Procs[key(name)]
	if !ok {
		return nil, missing("function", name)
	}
	return p, nil
}

// access methods --------------------------------------------------------------

// AddAccessMethod registers an access method (SYSAMS).
func (c *Catalog) AddAccessMethod(a *AccessMethod) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.Ams[key(a.Name)]; dup {
		return exists("access method", a.Name)
	}
	c.Ams[key(a.Name)] = a
	c.gen.Add(1)
	return nil
}

// AmByName fetches an access method.
func (c *Catalog) AmByName(name string) (*AccessMethod, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.Ams[key(name)]
	if !ok {
		return nil, missing("access method", name)
	}
	return a, nil
}

// op classes -------------------------------------------------------------------

// AddOpClass registers an operator class.
func (c *Catalog) AddOpClass(o *OpClass) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.OpCls[key(o.Name)]; dup {
		return exists("operator class", o.Name)
	}
	if _, ok := c.Ams[key(o.AmName)]; !ok {
		return missing("access method", o.AmName)
	}
	// First class of an access method becomes its default.
	def := true
	for _, other := range c.OpCls {
		if key(other.AmName) == key(o.AmName) {
			def = false
			break
		}
	}
	o.Default = def
	c.OpCls[key(o.Name)] = o
	c.gen.Add(1)
	return nil
}

// OpClassByName fetches an operator class.
func (c *Catalog) OpClassByName(name string) (*OpClass, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	o, ok := c.OpCls[key(name)]
	if !ok {
		return nil, missing("operator class", name)
	}
	return o, nil
}

// DefaultOpClass returns the access method's default operator class.
func (c *Catalog) DefaultOpClass(amName string) (*OpClass, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, o := range c.OpCls {
		if key(o.AmName) == key(amName) && o.Default {
			return o, nil
		}
	}
	return nil, fmt.Errorf("catalog: access method %q has no default operator class", amName)
}

// indices -----------------------------------------------------------------------

// AddIndex registers an index (SYSINDICES).
func (c *Catalog) AddIndex(ix *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.Indices[key(ix.Name)]; dup {
		return exists("index", ix.Name)
	}
	c.Indices[key(ix.Name)] = ix
	c.gen.Add(1)
	return nil
}

// IndexByName fetches an index.
func (c *Catalog) IndexByName(name string) (*Index, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.Indices[key(name)]
	if !ok {
		return nil, missing("index", name)
	}
	return ix, nil
}

// DropIndex removes an index entry (and its collected statistics).
func (c *Catalog) DropIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, ok := c.Indices[key(name)]
	if !ok {
		return missing("index", name)
	}
	if ts, ok := c.Stats[key(ix.TableName)]; ok && ts.Indexes != nil {
		delete(ts.Indexes, key(name))
	}
	delete(c.Indices, key(name))
	c.gen.Add(1)
	return nil
}

// PurgeBuildingIndexes removes every index left in the BUILDING state by a
// crash, together with the access-method records that belong to it: the
// "am|index" bookkeeping row plus any auxiliary record (e.g. a blade's
// duplicate-suppression marker) whose value names the index. The on-disk
// index storage itself is garbage the crashed build's transaction never
// committed; recovery rolls it back. Returns the purged index names,
// sorted.
func (c *Catalog) PurgeBuildingIndexes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for k, ix := range c.Indices {
		if !ix.Ready() {
			names = append(names, ix.Name)
			delete(c.Indices, k)
		}
	}
	for _, name := range names {
		c.purgeAMRecordsLocked(name)
	}
	if len(names) > 0 {
		c.gen.Add(1)
	}
	sort.Strings(names)
	return names
}

// AMRecordsPurgeIndex removes every access-method record belonging to one
// index: the "am|index" bookkeeping row plus any auxiliary record (e.g. a
// blade's duplicate-suppression marker) whose value names the index. Failed
// index builds use it to clean up after am_create has already persisted
// records.
func (c *Catalog) AMRecordsPurgeIndex(index string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.purgeAMRecordsLocked(index)
}

func (c *Catalog) purgeAMRecordsLocked(index string) {
	lk := key(index)
	for rk, v := range c.AmRecords {
		if strings.HasSuffix(rk, "|"+lk) || string(v) == lk {
			delete(c.AmRecords, rk)
		}
	}
}

// IndexesOn lists the indexes on a table, name-sorted.
func (c *Catalog) IndexesOn(table string) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, ix := range c.Indices {
		if key(ix.TableName) == key(table) {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// statistics (SYSSTATS) -------------------------------------------------------

// TableStats is one table's collected statistics: the live row/page counts
// at collection time plus each ready index's am_stats result, stamped with
// the catalog generation the collection published under.
type TableStats struct {
	Rows  int
	Pages int
	// Collected is the catalog generation this record was published at
	// (equal to Generation() right after UPDATE STATISTICS; every later DDL
	// widens the age).
	Collected uint64
	// Indexes maps lower index name → its am_stats result.
	Indexes map[string]*am.IndexStats
}

// StatsPut publishes a table's collected statistics and bumps the catalog
// generation (invalidating shared-plan-cache entries costed under the old
// statistics). The record's Collected stamp is the post-bump generation, so
// a record is age 0 immediately after collection.
func (c *Catalog) StatsPut(table string, ts *TableStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Stats == nil {
		c.Stats = make(map[string]*TableStats)
	}
	ts.Collected = c.gen.Add(1)
	c.Stats[key(table)] = ts
}

// StatsGet fetches a table's collected statistics (nil when UPDATE
// STATISTICS has not run for it).
func (c *Catalog) StatsGet(table string) *TableStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.Stats[key(table)]
}

// IndexStats resolves one index's collected statistics through its table's
// record (nil when absent).
func (c *Catalog) IndexStats(table, index string) *am.IndexStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts := c.Stats[key(table)]
	if ts == nil || ts.Indexes == nil {
		return nil
	}
	return ts.Indexes[key(index)]
}

// sbspaces -------------------------------------------------------------------------

// AMRecordPut stores an access method's bookkeeping record for an index.
func (c *Catalog) AMRecordPut(amName, index string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.AmRecords == nil {
		c.AmRecords = make(map[string][]byte)
	}
	c.AmRecords[key(amName)+"|"+key(index)] = append([]byte(nil), data...)
}

// AMRecordGet fetches an access method's bookkeeping record.
func (c *Catalog) AMRecordGet(amName, index string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.AmRecords[key(amName)+"|"+key(index)]
	return d, ok
}

// AMRecordDelete removes an access method's bookkeeping record.
func (c *Catalog) AMRecordDelete(amName, index string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.AmRecords, key(amName)+"|"+key(index))
}

// AllocSpaceID mints a WAL space id (tables and sbspaces share the
// namespace).
func (c *Catalog) AllocSpaceID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.NextSpaceID
	c.NextSpaceID++
	return id
}

// AddSbspace registers an sbspace and assigns its id.
func (c *Catalog) AddSbspace(name string) (*Sbspace, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.Sbspaces[key(name)]; dup {
		return nil, exists("sbspace", name)
	}
	s := &Sbspace{Name: name, ID: c.NextSpaceID}
	c.NextSpaceID++
	c.Sbspaces[key(name)] = s
	c.gen.Add(1)
	return s, nil
}

// SbspaceByName fetches an sbspace.
func (c *Catalog) SbspaceByName(name string) (*Sbspace, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.Sbspaces[key(name)]
	if !ok {
		return nil, missing("sbspace", name)
	}
	return s, nil
}

// VirtualTables describes the onstat-style virtual catalog tables the
// engine serves from live counters (never stored): SYSPROFILE, the
// engine-wide profile counters, and SYSPTPROF, per-partition buffer-pool
// I/O. The engine materialises their rows on every read; the catalog only
// owns the schemas so SELECT projection and WHERE evaluation work unchanged.
func VirtualTables() []*Table {
	return []*Table{
		{Name: "sysprofile", Columns: []Column{
			{Name: "name", TypeName: "lvarchar"},
			{Name: "value", TypeName: "integer"},
		}},
		{Name: "sysptprof", Columns: []Column{
			{Name: "partition", TypeName: "lvarchar"},
			{Name: "kind", TypeName: "lvarchar"},
			{Name: "fetches", TypeName: "integer"},
			{Name: "hits", TypeName: "integer"},
			{Name: "reads", TypeName: "integer"},
			{Name: "writes", TypeName: "integer"},
			{Name: "evictions", TypeName: "integer"},
		}},
	}
}
