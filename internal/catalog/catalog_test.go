package catalog

import (
	"testing"
)

func TestTablesAndColumns(t *testing.T) {
	c := New("")
	tb := &Table{Name: "Employees", Columns: []Column{{"Name", "VARCHAR"}, {"Time_Extent", "GRT_TimeExtent_t"}}}
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(&Table{Name: "EMPLOYEES"}); err == nil {
		t.Fatal("case-insensitive duplicate must fail")
	}
	got, err := c.TableByName("employees")
	if err != nil || got != tb {
		t.Fatal("lookup")
	}
	i, err := tb.ColumnIndex("TIME_EXTENT")
	if err != nil || i != 1 {
		t.Fatalf("column index %d %v", i, err)
	}
	if _, err := tb.ColumnIndex("nope"); err == nil {
		t.Fatal("missing column")
	}
	if _, err := c.TableByName("nope"); err == nil {
		t.Fatal("missing table")
	}
}

func TestDropTableWithIndex(t *testing.T) {
	c := New("")
	c.AddTable(&Table{Name: "t"})
	c.AddIndex(&Index{Name: "ix", TableName: "t"})
	if err := c.DropTable("t"); err == nil {
		t.Fatal("drop with live index must fail")
	}
	c.DropIndex("ix")
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err == nil {
		t.Fatal("double drop")
	}
}

func TestProcedures(t *testing.T) {
	c := New("")
	p := &Procedure{Name: "grt_open", ArgTypes: []string{"pointer"}, Returns: "int",
		External: "usr/functions/grtree.bld(grt_open)", Language: "c"}
	if err := c.AddProcedure(p); err != nil {
		t.Fatal(err)
	}
	got, err := c.ProcByName("GRT_OPEN")
	if err != nil {
		t.Fatal(err)
	}
	lib, sym, err := got.ParseExternal()
	if err != nil || lib != "usr/functions/grtree.bld" || sym != "grt_open" {
		t.Fatalf("external: %q %q %v", lib, sym, err)
	}
	bad := Procedure{External: "nosuchformat"}
	if _, _, err := bad.ParseExternal(); err == nil {
		t.Fatal("malformed external must fail")
	}
	if err := c.AddProcedure(p); err == nil {
		t.Fatal("duplicate function")
	}
}

func TestAmsAndOpClasses(t *testing.T) {
	c := New("")
	if err := c.AddAccessMethod(&AccessMethod{Name: "grtree_am", Slots: map[string]string{"am_getnext": "grt_getnext"}, SpType: "S"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddOpClass(&OpClass{Name: "grt_opclass", AmName: "grtree_am", Strategies: []string{"overlaps"}}); err != nil {
		t.Fatal(err)
	}
	// First class becomes default; second does not.
	if err := c.AddOpClass(&OpClass{Name: "grt_opclass2", AmName: "grtree_am"}); err != nil {
		t.Fatal(err)
	}
	def, err := c.DefaultOpClass("grtree_am")
	if err != nil || def.Name != "grt_opclass" {
		t.Fatalf("default opclass: %v %v", def, err)
	}
	o2, _ := c.OpClassByName("grt_opclass2")
	if o2.Default {
		t.Fatal("second class must not be default")
	}
	// Op class for a missing access method fails.
	if err := c.AddOpClass(&OpClass{Name: "x", AmName: "nope"}); err == nil {
		t.Fatal("opclass on missing am")
	}
	if _, err := c.DefaultOpClass("nope_am"); err == nil {
		t.Fatal("no default for unknown am")
	}
	if _, err := c.AmByName("nope"); err == nil {
		t.Fatal("missing am")
	}
}

func TestIndexesOn(t *testing.T) {
	c := New("")
	c.AddIndex(&Index{Name: "b_ix", TableName: "emp"})
	c.AddIndex(&Index{Name: "a_ix", TableName: "emp"})
	c.AddIndex(&Index{Name: "c_ix", TableName: "other"})
	got := c.IndexesOn("EMP")
	if len(got) != 2 || got[0].Name != "a_ix" || got[1].Name != "b_ix" {
		t.Fatalf("indexes: %v", got)
	}
	if _, err := c.IndexByName("a_ix"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("zzz"); err == nil {
		t.Fatal("drop missing index")
	}
}

func TestSbspaces(t *testing.T) {
	c := New("")
	s1, err := c.AddSbspace("spc")
	if err != nil || s1.ID != 1 {
		t.Fatalf("%v %v", s1, err)
	}
	s2, _ := c.AddSbspace("spc2")
	if s2.ID != 2 {
		t.Fatal("space ids must increment")
	}
	if _, err := c.AddSbspace("SPC"); err == nil {
		t.Fatal("duplicate sbspace")
	}
	if _, err := c.SbspaceByName("spc"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SbspaceByName("zzz"); err == nil {
		t.Fatal("missing sbspace")
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	c := New(dir)
	c.AddTable(&Table{Name: "emp", Columns: []Column{{"n", "INT"}}})
	c.AddSbspace("spc")
	c.AddAccessMethod(&AccessMethod{Name: "am1", Slots: map[string]string{"am_getnext": "g"}})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.TableByName("emp"); err != nil {
		t.Fatal("table lost")
	}
	if s, err := c2.SbspaceByName("spc"); err != nil || s.ID != 1 {
		t.Fatal("sbspace lost")
	}
	if c2.NextSpaceID != 2 {
		t.Fatalf("space counter %d", c2.NextSpaceID)
	}
	// Memory catalog Save is a no-op.
	if err := New("").Save(); err != nil {
		t.Fatal(err)
	}
	// Fresh dir loads empty.
	c3, err := Load(t.TempDir())
	if err != nil || len(c3.Tables) != 0 {
		t.Fatal("fresh load")
	}
}
