package rstar

import (
	"fmt"
	"sync"

	"repro/internal/nodestore"
)

// ParallelScan partitions a query by root fan-out, mirroring the GR-tree's
// parallel scan: matching root children form a shared work queue, and each
// worker's PartCursor claims and drains subtrees with read-latch crabbing.
// Partitions are disjoint (every leaf entry lives under exactly one root
// child), so the union of the partitions equals the serial result set.
type ParallelScan struct {
	t     *Tree
	op    Op
	query Rect

	mu    sync.Mutex
	queue []nodestore.NodeID
	epoch uint64

	cursors []*PartCursor
}

// ParallelScan offers the query a root fan-out partitioning; nil (no error)
// declines when the tree is too shallow or fewer than two root children
// match.
func (t *Tree) ParallelScan(op Op, query Rect, degree int) (*ParallelScan, error) {
	if degree < 2 || t.height < 2 || query.Empty() {
		return nil, nil
	}
	ps := &ParallelScan{t: t, op: op, query: query}
	if err := ps.build(); err != nil {
		return nil, err
	}
	if len(ps.queue) < 2 {
		return nil, nil
	}
	return ps, nil
}

func (ps *ParallelScan) build() error {
	root, err := ps.t.readNode(ps.t.root)
	if err != nil {
		return err
	}
	ps.queue = ps.queue[:0]
	if root.level == 0 {
		ps.queue = append(ps.queue, root.id)
	} else {
		for _, e := range root.entries {
			if internalTest(ps.op, e.Rect, ps.query) {
				ps.queue = append(ps.queue, e.Child())
			}
		}
	}
	ps.epoch = ps.t.epoch
	return nil
}

// Parts returns the number of independent work units.
func (ps *ParallelScan) Parts() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.queue)
}

// Cursor hands out one worker's partition cursor.
func (ps *ParallelScan) Cursor() *PartCursor {
	c := &PartCursor{ps: ps}
	ps.mu.Lock()
	ps.cursors = append(ps.cursors, c)
	ps.mu.Unlock()
	return c
}

func (ps *ParallelScan) claim() (nodestore.NodeID, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(ps.queue) == 0 {
		return nodestore.NilNode, false
	}
	id := ps.queue[0]
	ps.queue = ps.queue[1:]
	return id, true
}

// Reset re-seeds the work queue and rewinds the partition cursors
// (rst_rescan); the server guarantees all workers have stopped.
func (ps *ParallelScan) Reset() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, c := range ps.cursors {
		c.reset()
	}
	return ps.build()
}

// PartCursor drains subtrees claimed from the shared queue; one per worker.
type PartCursor struct {
	ps    *ParallelScan
	stack []frame
	held  nodestore.NodeID
}

func (c *PartCursor) push(id nodestore.NodeID) error {
	lt := c.ps.t.latches
	if c.held == nodestore.NilNode {
		lt.RLock(id)
	} else {
		lt.Crab(c.held, id)
	}
	c.held = id
	buf := make([]byte, nodestore.NodeSize)
	if err := c.ps.t.store.Read(id, buf); err != nil {
		c.unlatch()
		return err
	}
	n, err := decodeNode(id, buf)
	if err != nil {
		c.unlatch()
		return err
	}
	c.stack = append(c.stack, frame{entries: n.entries, level: n.level})
	return nil
}

func (c *PartCursor) unlatch() {
	if c.held != nodestore.NilNode {
		c.ps.t.latches.RUnlock(c.held)
		c.held = nodestore.NilNode
	}
}

func (c *PartCursor) reset() {
	c.unlatch()
	c.stack = nil
}

// NextBatch fills dst with the next qualifying entries; fewer than len(dst)
// means the shared queue is drained and the worker is done.
func (c *PartCursor) NextBatch(dst []Entry) (int, error) {
	if c.ps.t.epoch != c.ps.epoch {
		c.unlatch()
		return 0, fmt.Errorf("rstar: tree reorganised under a parallel scan")
	}
	n := 0
	for n < len(dst) {
		if len(c.stack) == 0 {
			c.unlatch()
			id, ok := c.ps.claim()
			if !ok {
				return n, nil
			}
			if err := c.push(id); err != nil {
				return n, err
			}
			continue
		}
		fr := &c.stack[len(c.stack)-1]
		if fr.idx >= len(fr.entries) {
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		if fr.level == 0 {
			for fr.idx < len(fr.entries) && n < len(dst) {
				e := fr.entries[fr.idx]
				fr.idx++
				if leafTest(c.ps.op, e.Rect, c.ps.query) {
					dst[n] = e
					n++
				}
			}
			continue
		}
		e := fr.entries[fr.idx]
		fr.idx++
		if internalTest(c.ps.op, e.Rect, c.ps.query) {
			if err := c.push(e.Child()); err != nil {
				return n, err
			}
		}
	}
	c.unlatch()
	return n, nil
}
