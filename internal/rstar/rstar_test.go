package rstar

import (
	"math/rand"
	"testing"

	"repro/internal/nodestore"
)

func smallConfig() Config {
	return Config{MaxEntries: 8, MinFillPct: 40, ReinsertPct: 30}
}

func newTestTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := Create(nodestore.NewMem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomRect(rng *rand.Rand, extent int64) Rect {
	x := rng.Int63n(extent)
	y := rng.Int63n(extent)
	return Rect{XMin: x, XMax: x + rng.Int63n(40), YMin: y, YMax: y + rng.Int63n(40)}
}

func bruteForce(model map[Payload]Rect, op Op, q Rect) map[Payload]bool {
	out := make(map[Payload]bool)
	for p, r := range model {
		if leafTest(op, r, q) {
			out[p] = true
		}
	}
	return out
}

func equalSets(a []Payload, b map[Payload]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for _, p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

func TestRectAlgebra(t *testing.T) {
	a := Rect{0, 10, 0, 10}
	b := Rect{5, 15, 5, 15}
	if !a.Overlaps(b) || a.IntersectionArea(b) != 36 {
		t.Fatalf("intersection: %v", a.IntersectionArea(b))
	}
	u := a.Union(b)
	if u != (Rect{0, 15, 0, 15}) {
		t.Fatalf("union: %v", u)
	}
	if !u.Contains(a) || !u.Contains(b) || a.Contains(b) {
		t.Fatal("contains")
	}
	if a.Area() != 121 || a.Margin() != 22 {
		t.Fatalf("area %v margin %v", a.Area(), a.Margin())
	}
	e := Rect{5, 4, 0, 0}
	if !e.Empty() || e.Area() != 0 || e.Margin() != 0 {
		t.Fatal("empty rect")
	}
	if !a.Contains(e) {
		t.Fatal("everything contains empty")
	}
	if a.Enlargement(b) != u.Area()-a.Area() {
		t.Fatal("enlargement")
	}
	if a.String() == "" {
		t.Fatal("string")
	}
}

func TestInsertSearchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := newTestTree(t, smallConfig())
	model := make(map[Payload]Rect)
	for i := 0; i < 400; i++ {
		r := randomRect(rng, 500)
		p := Payload(i + 1)
		if err := tr.Insert(r, p); err != nil {
			t.Fatal(err)
		}
		model[p] = r
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 || tr.Size() != 400 {
		t.Fatalf("height %d size %d", tr.Height(), tr.Size())
	}
	for trial := 0; trial < 40; trial++ {
		q := randomRect(rng, 500)
		for _, op := range []Op{OpOverlaps, OpEqual, OpContains, OpContainedIn} {
			got, err := tr.SearchAll(op, q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalSets(got, bruteForce(model, op, q)) {
				t.Fatalf("%v(%v) mismatch", op, q)
			}
		}
	}
}

func TestDeleteAndCondense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := newTestTree(t, smallConfig())
	model := make(map[Payload]Rect)
	for i := 0; i < 300; i++ {
		r := randomRect(rng, 400)
		p := Payload(i + 1)
		if err := tr.Insert(r, p); err != nil {
			t.Fatal(err)
		}
		model[p] = r
	}
	for p := Payload(1); p <= 250; p++ {
		ok, _, err := tr.Delete(model[p], p)
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", p, ok, err)
		}
		delete(model, p)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 50 {
		t.Fatalf("size %d", tr.Size())
	}
	for trial := 0; trial < 20; trial++ {
		q := randomRect(rng, 400)
		got, err := tr.SearchAll(OpOverlaps, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSets(got, bruteForce(model, OpOverlaps, q)) {
			t.Fatal("post-delete mismatch")
		}
	}
	// Missing delete.
	if ok, _, _ := tr.Delete(Rect{1, 2, 1, 2}, 9999); ok {
		t.Fatal("phantom delete")
	}
}

func TestPersistence(t *testing.T) {
	store := nodestore.NewMem()
	tr, _ := Create(store, smallConfig())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if err := tr.Insert(randomRect(rng, 300), Payload(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	tr2, err := Open(store, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Size() != 100 || tr2.Height() != tr.Height() {
		t.Fatal("reopen mismatch")
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(nodestore.NewMem(), smallConfig()); err == nil {
		t.Fatal("open empty store must fail")
	}
}

func TestCursorProtocol(t *testing.T) {
	tr := newTestTree(t, smallConfig())
	for i := int64(0); i < 60; i++ {
		if err := tr.Insert(Rect{i, i + 5, i, i + 5}, Payload(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := tr.Search(OpOverlaps, Rect{0, 1000, 0, 1000})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 60 {
		t.Fatalf("scan count %d", n)
	}
	cur.Reset()
	if _, ok, _ := cur.Next(); !ok {
		t.Fatal("reset cursor must produce again")
	}
	if _, err := tr.Search(OpOverlaps, Rect{5, 4, 0, 0}); err == nil {
		t.Fatal("empty query must fail")
	}
}

func TestStatsLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := newTestTree(t, smallConfig())
	for i := 0; i < 200; i++ {
		if err := tr.Insert(randomRect(rng, 300), Payload(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	ls, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != tr.Height() {
		t.Fatalf("levels %d height %d", len(ls), tr.Height())
	}
	total := 0
	for _, l := range ls {
		if l.Level == 0 {
			total = l.Entries
		}
	}
	if total != 200 {
		t.Fatalf("leaf entries %d", total)
	}
	for _, op := range []Op{OpOverlaps, OpEqual, OpContains, OpContainedIn, Op(9)} {
		_ = op.String()
	}
}

func TestNoReinsertConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.ReinsertPct = 0
	tr := newTestTree(t, cfg)
	rng := rand.New(rand.NewSource(5))
	model := make(map[Payload]Rect)
	for i := 0; i < 200; i++ {
		r := randomRect(rng, 300)
		p := Payload(i + 1)
		if err := tr.Insert(r, p); err != nil {
			t.Fatal(err)
		}
		model[p] = r
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	q := Rect{0, 400, 0, 400}
	got, _ := tr.SearchAll(OpOverlaps, q)
	if !equalSets(got, bruteForce(model, OpOverlaps, q)) {
		t.Fatal("no-reinsert tree mismatch")
	}
}

func TestEmptyRectInsertFails(t *testing.T) {
	tr := newTestTree(t, smallConfig())
	if err := tr.Insert(Rect{5, 4, 0, 0}, 1); err == nil {
		t.Fatal("empty rect insert must fail")
	}
}
