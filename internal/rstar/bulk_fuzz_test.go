package rstar

import (
	"math/rand"
	"testing"
)

// FuzzEvenPartition pins the STR run-partitioning invariants: the runs
// cover n exactly, none exceeds maxRun, none is empty, and the sizes are
// balanced to within one.
func FuzzEvenPartition(f *testing.F) {
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(7, 3)
	f.Add(100, 8)
	f.Add(64, 64)
	f.Add(65, 64)
	f.Add(4096, 6)
	f.Fuzz(func(t *testing.T, n, maxRun int) {
		if n < 0 || n > 1<<20 || maxRun < 1 || maxRun > 1<<20 {
			t.Skip()
		}
		runs := evenPartition(n, maxRun)
		wantRuns := (n + maxRun - 1) / maxRun
		if wantRuns < 1 {
			wantRuns = 1
		}
		if len(runs) != wantRuns {
			t.Fatalf("evenPartition(%d, %d): %d runs, want %d", n, maxRun, len(runs), wantRuns)
		}
		sum, min, max := 0, runs[0], runs[0]
		for _, r := range runs {
			sum += r
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
		if sum != n {
			t.Fatalf("evenPartition(%d, %d): runs sum to %d", n, maxRun, sum)
		}
		if max > maxRun {
			t.Fatalf("evenPartition(%d, %d): run of %d exceeds maxRun", n, maxRun, max)
		}
		if n > 0 && min < 1 {
			t.Fatalf("evenPartition(%d, %d): empty run", n, maxRun)
		}
		if max-min > 1 {
			t.Fatalf("evenPartition(%d, %d): unbalanced runs (min %d, max %d)", n, maxRun, min, max)
		}
	})
}

// FuzzBulkLoad drives packLevel through BulkLoad at arbitrary sizes and
// seeds: the tree must pass Check (bounds containment, uniform leaf depth,
// fill limits), report the loaded size, and return every payload on a
// full-space overlap query.
func FuzzBulkLoad(f *testing.F) {
	f.Add(0, int64(1))
	f.Add(1, int64(2))
	f.Add(6, int64(3))  // exactly one ~80%-filled node for MaxEntries=8
	f.Add(7, int64(4))  // one over
	f.Add(36, int64(5)) // one full level
	f.Add(500, int64(6))
	f.Fuzz(func(t *testing.T, n int, seed int64) {
		if n < 0 || n > 2000 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		var items []BulkItem
		model := make(map[Payload]bool, n)
		for i := 0; i < n; i++ {
			items = append(items, BulkItem{Rect: randomRect(rng, 1000), Payload: Payload(i + 1)})
			model[Payload(i+1)] = true
		}
		tr := newTestTree(t, smallConfig())
		if err := tr.BulkLoad(items); err != nil {
			t.Fatalf("BulkLoad(%d items): %v", n, err)
		}
		if tr.Size() != n {
			t.Fatalf("size %d after loading %d", tr.Size(), n)
		}
		if n == 0 {
			return
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("check after BulkLoad(%d): %v", n, err)
		}
		got, err := tr.SearchAll(OpOverlaps, Rect{XMin: 0, XMax: 1 << 40, YMin: 0, YMax: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("BulkLoad(%d): full-space search returned %d payloads", n, len(got))
		}
		for _, p := range got {
			if !model[p] {
				t.Fatalf("BulkLoad(%d): unknown payload %d returned", n, p)
			}
		}
	})
}
