package rstar

import (
	"fmt"
	"math"
	"sort"
)

// BulkItem is one (rectangle, payload) pair for bulk loading.
type BulkItem struct {
	Rect    Rect
	Payload Payload
}

// BulkLoad builds the tree from scratch using sort-tile-recursive packing:
// entries are sorted by X centre, tiled into √n vertical slabs, each slab
// sorted by Y centre and cut into node-sized runs. The tree must be empty.
func (t *Tree) BulkLoad(items []BulkItem) error {
	if t.size != 0 {
		return fmt.Errorf("rstar: bulk load into non-empty tree (%d entries)", t.size)
	}
	if len(items) == 0 {
		return nil
	}
	fill := t.cfg.MaxEntries * 4 / 5 // pack to ~80%; even runs stay above min fill
	if fill < 2 {
		fill = 2
	}

	entries := make([]Entry, len(items))
	for i, it := range items {
		if it.Rect.Empty() {
			return fmt.Errorf("rstar: bulk item %d has empty rectangle %v", i, it.Rect)
		}
		entries[i] = Entry{Rect: it.Rect, Ref: uint64(it.Payload)}
	}

	oldRoot := t.root
	level := 0
	for {
		nodes, err := t.packLevel(entries, level, fill)
		if err != nil {
			return err
		}
		if len(nodes) == 1 {
			t.root = nodes[0].Child()
			t.height = level + 1
			t.size = len(items)
			t.epoch++
			if err := t.store.Free(oldRoot); err != nil {
				return err
			}
			return t.saveMeta()
		}
		entries = nodes
		level++
	}
}

// evenPartition splits n items into runs of at most maxRun, with run sizes
// as equal as possible (so no run falls below half of maxRun).
func evenPartition(n, maxRun int) []int {
	k := (n + maxRun - 1) / maxRun
	if k < 1 {
		k = 1
	}
	base := n / k
	extra := n % k
	runs := make([]int, k)
	for i := range runs {
		runs[i] = base
		if i < extra {
			runs[i]++
		}
	}
	return runs
}

// packLevel tiles the entries into nodes of the given level and returns the
// parent entries for the next level up (sort-tile-recursive).
func (t *Tree) packLevel(entries []Entry, level, fill int) ([]Entry, error) {
	centres := make([][2]float64, len(entries))
	for i, e := range entries {
		centres[i] = [2]float64{
			float64(e.Rect.XMin+e.Rect.XMax) / 2,
			float64(e.Rect.YMin+e.Rect.YMax) / 2,
		}
	}
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return centres[order[a]][0] < centres[order[b]][0] })

	nNodes := (len(entries) + fill - 1) / fill
	nSlabs := int(math.Ceil(math.Sqrt(float64(nNodes))))
	slabSizes := evenPartition(len(entries), (len(entries)+nSlabs-1)/nSlabs)

	var parents []Entry
	pos := 0
	for _, slabLen := range slabSizes {
		slab := append([]int(nil), order[pos:pos+slabLen]...)
		pos += slabLen
		sort.SliceStable(slab, func(a, b int) bool { return centres[slab[a]][1] < centres[slab[b]][1] })
		r := 0
		for _, runLen := range evenPartition(len(slab), fill) {
			id, err := t.store.Alloc()
			if err != nil {
				return nil, err
			}
			n := &node{id: id, leaf: level == 0, level: level}
			for _, ix := range slab[r : r+runLen] {
				n.entries = append(n.entries, entries[ix])
			}
			r += runLen
			if err := t.writeNode(n); err != nil {
				return nil, err
			}
			parents = append(parents, Entry{Rect: boundOf(n.entries), Ref: uint64(id)})
		}
	}
	return parents, nil
}
