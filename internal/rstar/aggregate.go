package rstar

import "repro/internal/nodestore"

// Index-only aggregation (am_aggregate), mirroring the GR-tree's: COUNT sums
// leaf entries without resolving payloads to tuples, MIN/MAX locate the
// boundary leaf rectangle under the qualification. The rstblade only offers
// these when the index holds ground (substitution-free) rectangles, so the
// stored geometry is exact. Each entry point returns ok=false when the tree
// changed structurally mid-traversal; the caller then drains tuples instead.

// aggCoverable reports whether "query contains the bound" implies every
// descendant leaf satisfies op (Overlap and Within only).
func aggCoverable(op Op) bool {
	return op == OpOverlaps || op == OpContainedIn
}

// AggCount counts qualifying leaf entries without visiting tuples. Subtrees
// fully contained in the query are summed without per-entry tests (the
// parent rectangle contains each descendant); partially covered subtrees
// descend with the internal pruning test and evaluate leaves exactly.
func (t *Tree) AggCount(op Op, query Rect) (int64, bool, error) {
	if query.Empty() {
		return 0, false, nil
	}
	epoch := t.epoch
	var count int64
	var walk func(id nodestore.NodeID) error
	walk = func(id nodestore.NodeID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for _, e := range n.entries {
				if leafTest(op, e.Rect, query) {
					count++
				}
			}
			return nil
		}
		for _, e := range n.entries {
			if !internalTest(op, e.Rect, query) {
				continue
			}
			if aggCoverable(op) && query.Contains(e.Rect) {
				c, err := t.countAll(e.Child())
				if err != nil {
					return err
				}
				count += c
				continue
			}
			if err := walk(e.Child()); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		if t.epoch != epoch {
			return 0, false, nil
		}
		return 0, false, err
	}
	if t.epoch != epoch {
		return 0, false, nil
	}
	return count, true, nil
}

func (t *Tree) countAll(id nodestore.NodeID) (int64, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, err
	}
	if n.leaf {
		return int64(len(n.entries)), nil
	}
	var count int64
	for _, e := range n.entries {
		c, err := t.countAll(e.Child())
		if err != nil {
			return 0, err
		}
		count += c
	}
	return count, nil
}

// rectKeyLess orders rectangles lexicographically by (XMin, XMax, YMin,
// YMax) — the rstblade maps (TTBegin, TTEnd, VTBegin, VTEnd) onto these
// coordinates, so this is the same total order the GR-tree and the server's
// tuple-drain comparator use.
func rectKeyLess(a, b Rect) bool {
	if a.XMin != b.XMin {
		return a.XMin < b.XMin
	}
	if a.XMax != b.XMax {
		return a.XMax < b.XMax
	}
	if a.YMin != b.YMin {
		return a.YMin < b.YMin
	}
	return a.YMax < b.YMax
}

// AggExtreme returns the minimum (wantMax=false) or maximum (wantMax=true)
// qualifying leaf rectangle under the lexicographic key. found is false when
// nothing qualifies; ok is false when the tree changed structurally.
func (t *Tree) AggExtreme(op Op, query Rect, wantMax bool) (Rect, bool, bool, error) {
	if query.Empty() {
		return Rect{}, false, false, nil
	}
	epoch := t.epoch
	var best Rect
	found := false
	var walk func(id nodestore.NodeID) error
	walk = func(id nodestore.NodeID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for _, e := range n.entries {
				if !leafTest(op, e.Rect, query) {
					continue
				}
				if !found || (wantMax && rectKeyLess(best, e.Rect)) || (!wantMax && rectKeyLess(e.Rect, best)) {
					best = e.Rect
					found = true
				}
			}
			return nil
		}
		for _, e := range n.entries {
			if internalTest(op, e.Rect, query) {
				if err := walk(e.Child()); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		if t.epoch != epoch {
			return Rect{}, false, false, nil
		}
		return Rect{}, false, false, err
	}
	if t.epoch != epoch {
		return Rect{}, false, false, nil
	}
	return best, found, true, nil
}

// WalkLeaves visits every leaf entry (UPDATE STATISTICS histogram
// collection). Unordered and not epoch-checked — statistics are estimates.
func (t *Tree) WalkLeaves(fn func(Entry) error) error {
	var walk func(id nodestore.NodeID) error
	walk = func(id nodestore.NodeID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			for _, e := range n.entries {
				if err := fn(e); err != nil {
					return err
				}
			}
			return nil
		}
		for _, e := range n.entries {
			if err := walk(e.Child()); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root)
}
