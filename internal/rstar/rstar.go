// Package rstar implements the R*-tree of Beckmann et al. [BEC90] over
// two-dimensional integer rectangles: the access method the GR-tree is
// derived from (Section 3) and the baseline index for the performance-shape
// experiments. Bitemporal data is indexed through it by substituting ground
// values for UC and NOW (the rstblade package implements the maximum-
// timestamp and current-insertion-time substitution policies).
package rstar

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/nodestore"
)

// Rect is a closed integer rectangle [XMin, XMax] × [YMin, YMax].
type Rect struct {
	XMin, XMax, YMin, YMax int64
}

// Empty reports whether the rectangle contains no cell.
func (r Rect) Empty() bool { return r.XMin > r.XMax || r.YMin > r.YMax }

// Area returns the number of cells.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return float64(r.XMax-r.XMin+1) * float64(r.YMax-r.YMin+1)
}

// Margin returns the half-perimeter.
func (r Rect) Margin() float64 {
	if r.Empty() {
		return 0
	}
	return float64(r.XMax-r.XMin+1) + float64(r.YMax-r.YMin+1)
}

// Union returns the minimum bounding rectangle of r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		XMin: mini(r.XMin, o.XMin), XMax: maxi(r.XMax, o.XMax),
		YMin: mini(r.YMin, o.YMin), YMax: maxi(r.YMax, o.YMax),
	}
}

// Intersect returns the intersection (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		XMin: maxi(r.XMin, o.XMin), XMax: mini(r.XMax, o.XMax),
		YMin: maxi(r.YMin, o.YMin), YMax: mini(r.YMax, o.YMax),
	}
}

// Overlaps reports whether the rectangles share a cell.
func (r Rect) Overlaps(o Rect) bool { return !r.Intersect(o).Empty() }

// Contains reports whether o lies inside r.
func (r Rect) Contains(o Rect) bool {
	if o.Empty() {
		return true
	}
	return r.XMin <= o.XMin && o.XMax <= r.XMax && r.YMin <= o.YMin && o.YMax <= r.YMax
}

// IntersectionArea returns the shared cell count.
func (r Rect) IntersectionArea(o Rect) float64 { return r.Intersect(o).Area() }

// Enlargement returns how much r must grow to cover o.
func (r Rect) Enlargement(o Rect) float64 { return r.Union(o).Area() - r.Area() }

func (r Rect) String() string {
	return fmt.Sprintf("[%d..%d]x[%d..%d]", r.XMin, r.XMax, r.YMin, r.YMax)
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Payload is the opaque leaf value (rowid).
type Payload uint64

// Entry is a node entry: a rectangle plus a child node id or payload.
type Entry struct {
	Rect Rect
	Ref  uint64
}

// Child returns the child node id (internal entries).
func (e Entry) Child() nodestore.NodeID { return nodestore.NodeID(e.Ref) }

// Payload returns the payload (leaf entries).
func (e Entry) Payload() Payload { return Payload(e.Ref) }

// Node page layout: like the GR-tree's, with 40-byte entries
// (4 coordinates + ref).
const (
	nodeMagic  = 0x5253544E // "RSTN"
	nodeHeader = 16
	entrySize  = 40
)

// Capacity is the maximum entries per node.
const Capacity = (nodestore.NodeSize - nodeHeader) / entrySize

type node struct {
	id      nodestore.NodeID
	leaf    bool
	level   int
	entries []Entry
}

func (n *node) encode(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	binary.BigEndian.PutUint32(buf[0:4], nodeMagic)
	if n.leaf {
		buf[4] = 1
	}
	buf[5] = byte(n.level)
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(n.entries)))
	off := nodeHeader
	for _, e := range n.entries {
		binary.BigEndian.PutUint64(buf[off:], uint64(e.Rect.XMin))
		binary.BigEndian.PutUint64(buf[off+8:], uint64(e.Rect.XMax))
		binary.BigEndian.PutUint64(buf[off+16:], uint64(e.Rect.YMin))
		binary.BigEndian.PutUint64(buf[off+24:], uint64(e.Rect.YMax))
		binary.BigEndian.PutUint64(buf[off+32:], e.Ref)
		off += entrySize
	}
}

func decodeNode(id nodestore.NodeID, buf []byte) (*node, error) {
	if binary.BigEndian.Uint32(buf[0:4]) != nodeMagic {
		return nil, fmt.Errorf("rstar: node %d has bad magic", id)
	}
	n := &node{id: id, leaf: buf[4]&1 != 0, level: int(buf[5])}
	count := int(binary.BigEndian.Uint16(buf[6:8]))
	if count > Capacity {
		return nil, fmt.Errorf("rstar: node %d has impossible count %d", id, count)
	}
	n.entries = make([]Entry, count)
	off := nodeHeader
	for i := 0; i < count; i++ {
		n.entries[i] = Entry{
			Rect: Rect{
				XMin: int64(binary.BigEndian.Uint64(buf[off:])),
				XMax: int64(binary.BigEndian.Uint64(buf[off+8:])),
				YMin: int64(binary.BigEndian.Uint64(buf[off+16:])),
				YMax: int64(binary.BigEndian.Uint64(buf[off+24:])),
			},
			Ref: binary.BigEndian.Uint64(buf[off+32:]),
		}
		off += entrySize
	}
	return n, nil
}

// Config tunes the R*-tree.
type Config struct {
	MaxEntries  int // default and max: Capacity
	MinFillPct  int // default 40
	ReinsertPct int // default 30; 0 disables forced reinsertion
}

// DefaultConfig returns the standard R* parameters.
func DefaultConfig() Config { return Config{MaxEntries: Capacity, MinFillPct: 40, ReinsertPct: 30} }

func (c *Config) normalise() {
	if c.MaxEntries <= 0 || c.MaxEntries > Capacity {
		c.MaxEntries = Capacity
	}
	if c.MaxEntries < 4 {
		c.MaxEntries = 4
	}
	if c.MinFillPct <= 0 || c.MinFillPct > 50 {
		c.MinFillPct = 40
	}
	if c.ReinsertPct < 0 || c.ReinsertPct > 50 {
		c.ReinsertPct = 30
	}
}

// Tree is an R*-tree over a node store. Read-only traversal is protected by
// a per-node latch table so a parallel scan's workers may descend
// concurrently (ParallelScan); mutations stay single-goroutine.
type Tree struct {
	store   nodestore.Store
	cfg     Config
	latches *nodestore.LatchTable
	root    nodestore.NodeID
	height  int
	size    int
	epoch   uint64
}

const metaMagic = 0x52535452 // "RSTR"

// Create initialises an empty tree.
func Create(store nodestore.Store, cfg Config) (*Tree, error) {
	cfg.normalise()
	t := &Tree{store: store, cfg: cfg, latches: nodestore.NewLatchTable(), height: 1}
	id, err := store.Alloc()
	if err != nil {
		return nil, err
	}
	t.root = id
	if err := t.writeNode(&node{id: id, leaf: true}); err != nil {
		return nil, err
	}
	return t, t.saveMeta()
}

// Open loads an existing tree.
func Open(store nodestore.Store, cfg Config) (*Tree, error) {
	cfg.normalise()
	meta, err := store.Meta()
	if err != nil {
		return nil, err
	}
	if len(meta) < 32 || binary.BigEndian.Uint32(meta[0:4]) != metaMagic {
		return nil, fmt.Errorf("rstar: store holds no R*-tree")
	}
	t := &Tree{store: store, cfg: cfg, latches: nodestore.NewLatchTable()}
	t.root = nodestore.NodeID(binary.BigEndian.Uint64(meta[8:16]))
	t.height = int(binary.BigEndian.Uint64(meta[16:24]))
	t.size = int(binary.BigEndian.Uint64(meta[24:32]))
	return t, nil
}

func (t *Tree) saveMeta() error {
	meta := make([]byte, 32)
	binary.BigEndian.PutUint32(meta[0:4], metaMagic)
	binary.BigEndian.PutUint64(meta[8:16], uint64(t.root))
	binary.BigEndian.PutUint64(meta[16:24], uint64(t.height))
	binary.BigEndian.PutUint64(meta[24:32], uint64(t.size))
	return t.store.SetMeta(meta)
}

// Size returns the number of leaf entries.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Store exposes the node store.
func (t *Tree) Store() nodestore.Store { return t.store }

func (t *Tree) minFill() int {
	m := t.cfg.MaxEntries * t.cfg.MinFillPct / 100
	if m < 1 {
		m = 1
	}
	return m
}

func (t *Tree) readNode(id nodestore.NodeID) (*node, error) {
	t.latches.RLock(id)
	buf := make([]byte, nodestore.NodeSize)
	err := t.store.Read(id, buf)
	t.latches.RUnlock(id)
	if err != nil {
		return nil, err
	}
	return decodeNode(id, buf)
}

func (t *Tree) writeNode(n *node) error {
	buf := make([]byte, nodestore.NodeSize)
	n.encode(buf)
	t.latches.Lock(n.id)
	err := t.store.Write(n.id, buf)
	t.latches.Unlock(n.id)
	return err
}

func boundOf(entries []Entry) Rect {
	b := entries[0].Rect
	for _, e := range entries[1:] {
		b = b.Union(e.Rect)
	}
	return b
}

// Insert adds a rectangle with its payload.
func (t *Tree) Insert(r Rect, payload Payload) error {
	if r.Empty() {
		return fmt.Errorf("rstar: insert of empty rectangle %v", r)
	}
	if err := t.insertAtLevel(Entry{Rect: r, Ref: uint64(payload)}, 0, make(map[int]bool)); err != nil {
		return err
	}
	t.size++
	return t.saveMeta()
}

type pathStep struct {
	n   *node
	idx int
}

func (t *Tree) insertAtLevel(e Entry, level int, reinserted map[int]bool) error {
	var path []pathStep
	n, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	for n.level > level {
		idx := t.chooseSubtree(n, e.Rect)
		path = append(path, pathStep{n: n, idx: idx})
		child, err := t.readNode(n.entries[idx].Child())
		if err != nil {
			return err
		}
		n = child
	}
	n.entries = append(n.entries, e)

	for {
		if len(n.entries) <= t.cfg.MaxEntries {
			if err := t.writeNode(n); err != nil {
				return err
			}
			return t.adjustPath(path, n)
		}
		isRoot := n.id == t.root
		if !isRoot && !reinserted[n.level] && t.cfg.ReinsertPct > 0 {
			reinserted[n.level] = true
			return t.forcedReinsert(path, n, reinserted)
		}
		left, right, err := t.split(n)
		if err != nil {
			return err
		}
		t.epoch++
		if isRoot {
			return t.growRoot(left, right)
		}
		parent := path[len(path)-1].n
		idx := path[len(path)-1].idx
		path = path[:len(path)-1]
		parent.entries[idx] = Entry{Rect: boundOf(left.entries), Ref: uint64(left.id)}
		parent.entries = append(parent.entries, Entry{Rect: boundOf(right.entries), Ref: uint64(right.id)})
		n = parent
	}
}

func (t *Tree) adjustPath(path []pathStep, n *node) error {
	child := n
	for i := len(path) - 1; i >= 0; i-- {
		step := path[i]
		step.n.entries[step.idx] = Entry{Rect: boundOf(child.entries), Ref: uint64(child.id)}
		if err := t.writeNode(step.n); err != nil {
			return err
		}
		child = step.n
	}
	return nil
}

func (t *Tree) growRoot(left, right *node) error {
	id, err := t.store.Alloc()
	if err != nil {
		return err
	}
	root := &node{id: id, level: left.level + 1, entries: []Entry{
		{Rect: boundOf(left.entries), Ref: uint64(left.id)},
		{Rect: boundOf(right.entries), Ref: uint64(right.id)},
	}}
	if err := t.writeNode(root); err != nil {
		return err
	}
	t.root = id
	t.height++
	return t.saveMeta()
}

func (t *Tree) chooseSubtree(n *node, r Rect) int {
	type cand struct {
		idx     int
		enlarge float64
		area    float64
	}
	cands := make([]cand, len(n.entries))
	for i, e := range n.entries {
		cands[i] = cand{idx: i, enlarge: e.Rect.Enlargement(r), area: e.Rect.Area()}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].enlarge != cands[b].enlarge {
			return cands[a].enlarge < cands[b].enlarge
		}
		return cands[a].area < cands[b].area
	})
	if n.level != 1 {
		return cands[0].idx
	}
	k := len(cands)
	if k > 16 {
		k = 16
	}
	best, bestOverlap := 0, math.Inf(1)
	for c := 0; c < k; c++ {
		i := cands[c].idx
		u := n.entries[i].Rect.Union(r)
		var delta float64
		for j := range n.entries {
			if j == i {
				continue
			}
			delta += u.IntersectionArea(n.entries[j].Rect) - n.entries[i].Rect.IntersectionArea(n.entries[j].Rect)
		}
		if delta < bestOverlap {
			bestOverlap, best = delta, c
		}
	}
	return cands[best].idx
}

func (t *Tree) split(n *node) (*node, *node, error) {
	m := t.minFill()
	entries := n.entries
	M := len(entries)
	type sorting struct {
		axis int
		perm []int
	}
	mk := func(axis int, key func(Rect) int64) sorting {
		s := sorting{axis: axis, perm: make([]int, M)}
		for i := range s.perm {
			s.perm[i] = i
		}
		sort.SliceStable(s.perm, func(a, b int) bool {
			return key(entries[s.perm[a]].Rect) < key(entries[s.perm[b]].Rect)
		})
		return s
	}
	sortings := []sorting{
		mk(0, func(r Rect) int64 { return r.XMin }),
		mk(0, func(r Rect) int64 { return r.XMax }),
		mk(1, func(r Rect) int64 { return r.YMin }),
		mk(1, func(r Rect) int64 { return r.YMax }),
	}
	rectOf := func(idxs []int) Rect {
		b := entries[idxs[0]].Rect
		for _, ix := range idxs[1:] {
			b = b.Union(entries[ix].Rect)
		}
		return b
	}
	axisMargin := [2]float64{}
	for _, s := range sortings {
		for k := m; k <= M-m; k++ {
			axisMargin[s.axis] += rectOf(s.perm[:k]).Margin() + rectOf(s.perm[k:]).Margin()
		}
	}
	axis := 0
	if axisMargin[1] < axisMargin[0] {
		axis = 1
	}
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	var bestPerm []int
	bestK := -1
	for _, s := range sortings {
		if s.axis != axis {
			continue
		}
		for k := m; k <= M-m; k++ {
			b1, b2 := rectOf(s.perm[:k]), rectOf(s.perm[k:])
			ov, ar := b1.IntersectionArea(b2), b1.Area()+b2.Area()
			if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
				bestOverlap, bestArea, bestPerm, bestK = ov, ar, s.perm, k
			}
		}
	}
	if bestK < 0 {
		return nil, nil, fmt.Errorf("rstar: split found no distribution")
	}
	le := make([]Entry, 0, bestK)
	re := make([]Entry, 0, M-bestK)
	for _, ix := range bestPerm[:bestK] {
		le = append(le, entries[ix])
	}
	for _, ix := range bestPerm[bestK:] {
		re = append(re, entries[ix])
	}
	left := &node{id: n.id, leaf: n.leaf, level: n.level, entries: le}
	rid, err := t.store.Alloc()
	if err != nil {
		return nil, nil, err
	}
	right := &node{id: rid, leaf: n.leaf, level: n.level, entries: re}
	if err := t.writeNode(left); err != nil {
		return nil, nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

func (t *Tree) forcedReinsert(path []pathStep, n *node, reinserted map[int]bool) error {
	k := len(n.entries) * t.cfg.ReinsertPct / 100
	if k < 1 {
		k = 1
	}
	b := boundOf(n.entries)
	cx, cy := float64(b.XMin+b.XMax)/2, float64(b.YMin+b.YMax)/2
	type dist struct {
		idx int
		d   float64
	}
	ds := make([]dist, len(n.entries))
	for i, e := range n.entries {
		ex, ey := float64(e.Rect.XMin+e.Rect.XMax)/2, float64(e.Rect.YMin+e.Rect.YMax)/2
		ds[i] = dist{i, (ex-cx)*(ex-cx) + (ey-cy)*(ey-cy)}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
	removed := make([]Entry, 0, k)
	drop := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		removed = append(removed, n.entries[ds[i].idx])
		drop[ds[i].idx] = true
	}
	kept := n.entries[:0:0]
	for i, e := range n.entries {
		if !drop[i] {
			kept = append(kept, e)
		}
	}
	n.entries = kept
	if err := t.writeNode(n); err != nil {
		return err
	}
	if err := t.adjustPath(path, n); err != nil {
		return err
	}
	t.epoch++
	for i := len(removed) - 1; i >= 0; i-- {
		if err := t.insertAtLevel(removed[i], n.level, reinserted); err != nil {
			return err
		}
	}
	return nil
}
