package rstar

import (
	"math/rand"
	"testing"
)

// TestBulkLoad packs a tree via sort-tile-recursive loading and requires
// exact agreement with a brute-force model (and with an insert-loaded twin)
// across every operator, plus structural invariants via Check.
func TestBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var items []BulkItem
	model := make(map[Payload]Rect)
	for i := 0; i < 500; i++ {
		r := randomRect(rng, 1000)
		p := Payload(i + 1)
		items = append(items, BulkItem{Rect: r, Payload: p})
		model[p] = r
	}
	bulk := newTestTree(t, smallConfig())
	if err := bulk.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	if bulk.Size() != 500 {
		t.Fatalf("size %d", bulk.Size())
	}
	if err := bulk.Check(); err != nil {
		t.Fatalf("check after bulk load: %v", err)
	}
	ins := newTestTree(t, smallConfig())
	for _, it := range items {
		if err := ins.Insert(it.Rect, it.Payload); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 25; trial++ {
		q := randomRect(rng, 1000)
		for _, op := range []Op{OpOverlaps, OpEqual, OpContains, OpContainedIn} {
			want := bruteForce(model, op, q)
			got, err := bulk.SearchAll(op, q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalSets(got, want) {
				t.Fatalf("%s trial %d: bulk tree disagrees with model", op, trial)
			}
			viaInsert, err := ins.SearchAll(op, q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalSets(viaInsert, want) {
				t.Fatalf("%s trial %d: insert tree disagrees with model", op, trial)
			}
		}
	}
	// A bulk-loaded tree remains mutable: delete and re-insert keep agreeing.
	for i := 0; i < 50; i++ {
		p := Payload(i + 1)
		removed, _, err := bulk.Delete(model[p], p)
		if err != nil || !removed {
			t.Fatalf("delete %d: removed=%v err=%v", p, removed, err)
		}
		delete(model, p)
	}
	if err := bulk.Check(); err != nil {
		t.Fatalf("check after deletes: %v", err)
	}
	got, err := bulk.SearchAll(OpOverlaps, Rect{XMin: 0, XMax: 1 << 40, YMin: 0, YMax: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(got, bruteForce(model, OpOverlaps, Rect{XMin: 0, XMax: 1 << 40, YMin: 0, YMax: 1 << 40})) {
		t.Fatal("post-delete agreement")
	}

	// Bulk load into a non-empty tree fails; the empty load is a no-op.
	if err := bulk.BulkLoad(items); err == nil {
		t.Fatal("bulk load into non-empty tree must fail")
	}
	empty := newTestTree(t, smallConfig())
	if err := empty.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if empty.Size() != 0 {
		t.Fatalf("empty bulk load changed size: %d", empty.Size())
	}
}

// TestBulkLoadSizes sweeps awkward cardinalities (single item, exactly one
// node, one over, big) and checks structure and content each time.
func TestBulkLoadSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fill := smallConfig().MaxEntries * 4 / 5
	for _, n := range []int{1, 2, fill, fill + 1, fill * fill, fill*fill + 1, 1000} {
		var items []BulkItem
		model := make(map[Payload]Rect)
		for i := 0; i < n; i++ {
			r := randomRect(rng, 500)
			items = append(items, BulkItem{Rect: r, Payload: Payload(i + 1)})
			model[Payload(i+1)] = r
		}
		tr := newTestTree(t, smallConfig())
		if err := tr.BulkLoad(items); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Size() != n {
			t.Fatalf("n=%d: size %d", n, tr.Size())
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d: check: %v", n, err)
		}
		all, err := tr.SearchAll(OpOverlaps, Rect{XMin: 0, XMax: 1 << 40, YMin: 0, YMax: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		if !equalSets(all, bruteForce(model, OpOverlaps, Rect{XMin: 0, XMax: 1 << 40, YMin: 0, YMax: 1 << 40})) {
			t.Fatalf("n=%d: content mismatch", n)
		}
	}
}
