package rstar

import (
	"fmt"

	"repro/internal/nodestore"
)

// Op is a query operator, matching the R-tree operator class strategy
// functions Overlap(), Equal(), Contains(), Within() (Section 5.2).
type Op int

const (
	// OpOverlaps finds rectangles sharing a cell with the query.
	OpOverlaps Op = iota
	// OpEqual finds rectangles equal to the query.
	OpEqual
	// OpContains finds rectangles containing the query.
	OpContains
	// OpContainedIn finds rectangles inside the query (Within).
	OpContainedIn
)

func (o Op) String() string {
	switch o {
	case OpOverlaps:
		return "Overlap"
	case OpEqual:
		return "Equal"
	case OpContains:
		return "Contains"
	case OpContainedIn:
		return "Within"
	}
	return "?"
}

func leafTest(op Op, r, q Rect) bool {
	switch op {
	case OpOverlaps:
		return r.Overlaps(q)
	case OpEqual:
		return r == q
	case OpContains:
		return r.Contains(q)
	case OpContainedIn:
		return q.Contains(r)
	}
	return false
}

func internalTest(op Op, bound, q Rect) bool {
	switch op {
	case OpOverlaps, OpContainedIn:
		return bound.Overlaps(q)
	case OpEqual, OpContains:
		return bound.Contains(q)
	}
	return false
}

// Cursor iterates qualifying entries; structural changes restart it, with
// returned-entry bookkeeping preventing duplicates.
type Cursor struct {
	t        *Tree
	op       Op
	query    Rect
	stack    []frame
	epoch    uint64
	started  bool
	returned map[Payload]bool
	restarts int
}

type frame struct {
	entries []Entry
	level   int
	idx     int
}

// Search creates a cursor for op against the query rectangle.
func (t *Tree) Search(op Op, query Rect) (*Cursor, error) {
	if query.Empty() {
		return nil, fmt.Errorf("rstar: empty query rectangle %v", query)
	}
	return &Cursor{t: t, op: op, query: query, epoch: t.epoch, returned: make(map[Payload]bool)}, nil
}

// Reset rewinds the cursor.
func (c *Cursor) Reset() {
	c.stack = nil
	c.started = false
	c.returned = make(map[Payload]bool)
	c.epoch = c.t.epoch
	c.restarts = 0
}

// Restarts counts structural restarts.
func (c *Cursor) Restarts() int { return c.restarts }

func (c *Cursor) restart() {
	c.stack = nil
	c.started = false
	c.epoch = c.t.epoch
	c.restarts++
}

func (c *Cursor) push(id nodestore.NodeID) error {
	n, err := c.t.readNode(id)
	if err != nil {
		return err
	}
	c.stack = append(c.stack, frame{entries: n.entries, level: n.level})
	return nil
}

// Next returns the next qualifying entry.
func (c *Cursor) Next() (Entry, bool, error) {
	if c.epoch != c.t.epoch {
		c.restart()
	}
	if !c.started {
		c.started = true
		if err := c.push(c.t.root); err != nil {
			return Entry{}, false, err
		}
	}
	for len(c.stack) > 0 {
		fr := &c.stack[len(c.stack)-1]
		if fr.idx >= len(fr.entries) {
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		e := fr.entries[fr.idx]
		fr.idx++
		if fr.level == 0 {
			if leafTest(c.op, e.Rect, c.query) && !c.returned[e.Payload()] {
				c.returned[e.Payload()] = true
				return e, true, nil
			}
			continue
		}
		if internalTest(c.op, e.Rect, c.query) {
			if err := c.push(e.Child()); err != nil {
				return Entry{}, false, err
			}
			if c.epoch != c.t.epoch {
				c.restart()
				if err := c.push(c.t.root); err != nil {
					return Entry{}, false, err
				}
				c.started = true
			}
		}
	}
	return Entry{}, false, nil
}

// NextBatch fills dst with the next qualifying entries (the am_getmulti
// service), draining each visited leaf frame's matches in one pass. It
// returns the number filled; fewer than len(dst) means the scan is
// exhausted.
func (c *Cursor) NextBatch(dst []Entry) (int, error) {
	n := 0
	for n < len(dst) {
		if len(c.stack) > 0 && c.epoch == c.t.epoch {
			fr := &c.stack[len(c.stack)-1]
			if fr.level == 0 {
				for fr.idx < len(fr.entries) && n < len(dst) {
					e := fr.entries[fr.idx]
					fr.idx++
					if leafTest(c.op, e.Rect, c.query) && !c.returned[e.Payload()] {
						c.returned[e.Payload()] = true
						dst[n] = e
						n++
					}
				}
				if n == len(dst) {
					return n, nil
				}
			}
		}
		e, ok, err := c.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		dst[n] = e
		n++
	}
	return n, nil
}

// SearchAll runs the query to completion (tests and benchmarks).
func (t *Tree) SearchAll(op Op, query Rect) ([]Payload, error) {
	cur, err := t.Search(op, query)
	if err != nil {
		return nil, err
	}
	var out []Payload
	for {
		e, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, e.Payload())
	}
}

// Delete removes the leaf entry with exactly this rectangle and payload,
// reporting whether it was removed and whether the tree condensed.
func (t *Tree) Delete(r Rect, payload Payload) (removed, condensed bool, err error) {
	var path []pathStep
	n, e := t.readNode(t.root)
	if e != nil {
		return false, false, e
	}
	found, path, n, err := t.findLeaf(n, path, r, payload)
	if err != nil || !found {
		return false, false, err
	}
	for i, le := range n.entries {
		if le.Ref == uint64(payload) && le.Rect == r {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			break
		}
	}
	t.size--
	condensed, err = t.condense(path, n)
	if err != nil {
		return true, condensed, err
	}
	return true, condensed, t.saveMeta()
}

func (t *Tree) findLeaf(n *node, path []pathStep, r Rect, payload Payload) (bool, []pathStep, *node, error) {
	if n.level == 0 {
		for _, le := range n.entries {
			if le.Ref == uint64(payload) && le.Rect == r {
				return true, path, n, nil
			}
		}
		return false, path, n, nil
	}
	for idx, e := range n.entries {
		if !e.Rect.Contains(r) {
			continue
		}
		child, err := t.readNode(e.Child())
		if err != nil {
			return false, path, nil, err
		}
		found, p2, leaf, err := t.findLeaf(child, append(path, pathStep{n: n, idx: idx}), r, payload)
		if err != nil {
			return false, path, nil, err
		}
		if found {
			return true, p2, leaf, nil
		}
	}
	return false, path, nil, nil
}

func (t *Tree) condense(path []pathStep, n *node) (bool, error) {
	type orphan struct {
		e     Entry
		level int
	}
	var orphans []orphan
	structural := false
	for i := len(path); i >= 0; i-- {
		isRoot := n.id == t.root
		if !isRoot && len(n.entries) < t.minFill() {
			parent := path[i-1].n
			idx := path[i-1].idx
			parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e, n.level})
			}
			if err := t.store.Free(n.id); err != nil {
				return structural, err
			}
			structural = true
			n = parent
			continue
		}
		if err := t.writeNode(n); err != nil {
			return structural, err
		}
		if !isRoot {
			parent := path[i-1].n
			for j := range parent.entries {
				if parent.entries[j].Child() == n.id {
					parent.entries[j] = Entry{Rect: boundOf(n.entries), Ref: uint64(n.id)}
					break
				}
			}
			n = parent
			continue
		}
		break
	}
	for {
		root, err := t.readNode(t.root)
		if err != nil {
			return structural, err
		}
		if root.level == 0 || len(root.entries) != 1 {
			break
		}
		old := root.id
		t.root = root.entries[0].Child()
		t.height--
		if err := t.store.Free(old); err != nil {
			return structural, err
		}
		structural = true
	}
	if structural {
		t.epoch++
	}
	if len(orphans) > 0 {
		reinserted := make(map[int]bool)
		for _, o := range orphans {
			if err := t.insertAtLevel(o.e, o.level, reinserted); err != nil {
				return structural, err
			}
		}
	}
	return structural, t.saveMeta()
}

// Check validates the structural invariants.
func (t *Tree) Check() error {
	count := 0
	var walk func(id nodestore.NodeID, expectLevel int, isRoot bool, parent *Rect) error
	walk = func(id nodestore.NodeID, expectLevel int, isRoot bool, parent *Rect) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.level != expectLevel {
			return fmt.Errorf("rstar: node %d level %d, expected %d", n.id, n.level, expectLevel)
		}
		if !isRoot && len(n.entries) < t.minFill() {
			return fmt.Errorf("rstar: node %d underfull (%d < %d)", n.id, len(n.entries), t.minFill())
		}
		if len(n.entries) > t.cfg.MaxEntries {
			return fmt.Errorf("rstar: node %d overfull", n.id)
		}
		for _, e := range n.entries {
			if parent != nil && !parent.Contains(e.Rect) {
				return fmt.Errorf("rstar: node %d entry %v escapes parent %v", n.id, e.Rect, *parent)
			}
			if n.leaf {
				count++
				continue
			}
			r := e.Rect
			if err := walk(e.Child(), n.level-1, false, &r); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height-1, true, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rstar: leaf count %d != size %d", count, t.size)
	}
	return nil
}

// LevelStats aggregates one level for the goodness measures.
type LevelStats struct {
	Level   int
	Nodes   int
	Entries int
	Area    float64
	Overlap float64
}

// Stats walks the tree computing structure, area, and overlap per level.
func (t *Tree) Stats() ([]LevelStats, error) {
	levels := make(map[int]*LevelStats)
	bounds := make(map[int][]Rect)
	var walk func(id nodestore.NodeID) error
	walk = func(id nodestore.NodeID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		ls := levels[n.level]
		if ls == nil {
			ls = &LevelStats{Level: n.level}
			levels[n.level] = ls
		}
		ls.Nodes++
		ls.Entries += len(n.entries)
		if n.leaf {
			return nil
		}
		for _, e := range n.entries {
			bounds[n.level-1] = append(bounds[n.level-1], e.Rect)
			if err := walk(e.Child()); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	var out []LevelStats
	for lvl, ls := range levels {
		bs := bounds[lvl]
		for _, b := range bs {
			ls.Area += b.Area()
		}
		for i := 0; i < len(bs); i++ {
			for j := i + 1; j < len(bs); j++ {
				ls.Overlap += bs[i].IntersectionArea(bs[j])
			}
		}
		out = append(out, *ls)
	}
	return out, nil
}
