package nodestore

import (
	"bytes"
	"testing"

	"repro/internal/lock"
	"repro/internal/sbspace"
	"repro/internal/storage"
)

func newSpace() (*sbspace.Space, *lock.Manager) {
	bp := storage.NewBufferPool(storage.NewMemPager(), 512)
	lm := lock.New()
	return sbspace.New(1, "spc", bp, lm), lm
}

// storesUnderTest returns each Store implementation plus a reopen function
// (nil when reopening is not applicable).
func storesUnderTest(t *testing.T) map[string]func() (Store, func() Store) {
	return map[string]func() (Store, func() Store){
		"mem": func() (Store, func() Store) { return NewMem(), nil },
		"single-lo": func() (Store, func() Store) {
			space, lm := newSpace()
			s, h, err := CreateLO(space, 1, lock.CommittedRead, SingleLO)
			if err != nil {
				t.Fatal(err)
			}
			reopen := func() Store {
				s.Close()
				lm.ReleaseAll(1)
				s2, err := OpenLO(space, 2, lock.CommittedRead, h, sbspace.ReadWrite)
				if err != nil {
					t.Fatal(err)
				}
				return s2
			}
			return s, reopen
		},
		"per-node-lo": func() (Store, func() Store) {
			space, lm := newSpace()
			s, h, err := CreateLO(space, 1, lock.CommittedRead, PerNodeLO)
			if err != nil {
				t.Fatal(err)
			}
			reopen := func() Store {
				s.Close()
				lm.ReleaseAll(1)
				s2, err := OpenLO(space, 2, lock.CommittedRead, h, sbspace.ReadWrite)
				if err != nil {
					t.Fatal(err)
				}
				return s2
			}
			return s, reopen
		},
		"subtree-lo": func() (Store, func() Store) {
			space, lm := newSpace()
			s, h, err := CreateLO(space, 1, lock.CommittedRead, PerSubtreeLO(4))
			if err != nil {
				t.Fatal(err)
			}
			reopen := func() Store {
				s.Close()
				lm.ReleaseAll(1)
				s2, err := OpenLO(space, 2, lock.CommittedRead, h, sbspace.ReadWrite)
				if err != nil {
					t.Fatal(err)
				}
				return s2
			}
			return s, reopen
		},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, mk := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			s, reopen := mk()
			var ids []NodeID
			for i := 0; i < 10; i++ {
				id, err := s.Alloc()
				if err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, NodeSize)
				for j := range buf {
					buf[j] = byte(i + 1)
				}
				if err := s.Write(id, buf); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			check := func(s Store) {
				for i, id := range ids {
					buf := make([]byte, NodeSize)
					if err := s.Read(id, buf); err != nil {
						t.Fatal(err)
					}
					want := bytes.Repeat([]byte{byte(i + 1)}, NodeSize)
					if !bytes.Equal(buf, want) {
						t.Fatalf("node %d content mismatch", id)
					}
				}
			}
			check(s)
			if err := s.SetMeta([]byte("tree meta")); err != nil {
				t.Fatal(err)
			}
			m, err := s.Meta()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(m, []byte("tree meta")) {
				t.Fatalf("meta: %q", m[:16])
			}
			if reopen != nil {
				s2 := reopen()
				check(s2)
				m, err := s2.Meta()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.HasPrefix(m, []byte("tree meta")) {
					t.Fatal("meta lost across reopen")
				}
			}
		})
	}
}

func TestStoreFreeReuse(t *testing.T) {
	for name, mk := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			s, _ := mk()
			id1, _ := s.Alloc()
			id2, _ := s.Alloc()
			if err := s.Free(id1); err != nil {
				t.Fatal(err)
			}
			id3, err := s.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			if id3 != id1 {
				t.Fatalf("freed node not reused: got %d want %d", id3, id1)
			}
			buf := make([]byte, NodeSize)
			if err := s.Read(id3, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, make([]byte, NodeSize)) {
				t.Fatal("reused node not zeroed")
			}
			_ = id2
		})
	}
}

func TestStoreStats(t *testing.T) {
	for name, mk := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			s, _ := mk()
			id, _ := s.Alloc()
			buf := make([]byte, NodeSize)
			s.Write(id, buf)
			s.Read(id, buf)
			st := s.Stats()
			if st.NodeAllocs != 1 || st.NodeWrites < 1 || st.NodeReads < 1 {
				t.Fatalf("stats: %+v", st)
			}
			s.ResetStats()
			if s.Stats() != (Stats{}) {
				t.Fatal("reset")
			}
			d := st.Sub(Stats{NodeReads: 1})
			if d.NodeReads != st.NodeReads-1 {
				t.Fatal("sub")
			}
		})
	}
}

func TestPerNodePlacementOpensPerAccess(t *testing.T) {
	// Section 5.3: per-node LOs pay an open/close per node access.
	space, lm := newSpace()
	defer lm.ReleaseAll(1)
	s, _, err := CreateLO(space, 1, lock.CommittedRead, PerNodeLO)
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := s.Alloc()
	id2, _ := s.Alloc()
	buf := make([]byte, NodeSize)
	before := space.Stats()
	for i := 0; i < 5; i++ {
		if err := s.Read(id1, buf); err != nil {
			t.Fatal(err)
		}
		if err := s.Read(id2, buf); err != nil {
			t.Fatal(err)
		}
	}
	d := space.Stats()
	// Alternating nodes defeats the one-slot group cache: every access pays
	// an open (the Section 5.3 cost of per-node placement).
	if d.Opens-before.Opens < 9 {
		t.Fatalf("per-node alternating reads must reopen per access: %+v vs %+v", before, d)
	}
	// Repeated access to the same node reuses the cached open object.
	mid := space.Stats()
	for i := 0; i < 5; i++ {
		if err := s.Read(id2, buf); err != nil {
			t.Fatal(err)
		}
	}
	if space.Stats().Opens != mid.Opens {
		t.Fatal("same-node reads must reuse the cached open LO")
	}

	// Single-LO placement reads without extra opens.
	s2, _, err := CreateLO(space, 1, lock.CommittedRead, SingleLO)
	if err != nil {
		t.Fatal(err)
	}
	id3, _ := s2.Alloc()
	before = space.Stats()
	for i := 0; i < 5; i++ {
		if err := s2.Read(id3, buf); err != nil {
			t.Fatal(err)
		}
	}
	d = space.Stats()
	if d.Opens != before.Opens {
		t.Fatal("single-LO reads must not reopen")
	}
}

func TestMetaTooLarge(t *testing.T) {
	s := NewMem()
	if err := s.SetMeta(make([]byte, MetaSize+1)); err == nil {
		t.Fatal("oversized meta must fail")
	}
}

func TestReadMissingNode(t *testing.T) {
	s := NewMem()
	if err := s.Read(42, make([]byte, NodeSize)); err == nil {
		t.Fatal("read of unallocated node must fail")
	}
}
