// Package nodestore provides page-sized node storage for tree-based access
// methods (the R*-tree and the GR-tree). A tree node occupies exactly one
// page (Section 3); the store maps dense node ids to pages.
//
// Two implementations exist: an in-memory store for unit tests and
// algorithm benchmarks, and an sbspace-backed store whose node-to-large-
// object placement policy is configurable — the whole index in one large
// object (the paper's choice), one LO per node, or one LO per fixed-size
// node group ("subtrees") — reproducing the design space of Section 5.3.
package nodestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// NodeID identifies a node within one store. 0 is never a valid node.
type NodeID uint64

// NilNode is the invalid node id.
const NilNode NodeID = 0

// NodeSize is the size of a serialized node: one page.
const NodeSize = storage.PageSize

// Store is the node storage interface trees are written against.
type Store interface {
	// Alloc returns a fresh node id backed by zeroed storage.
	Alloc() (NodeID, error)
	// Read fills buf (NodeSize bytes) with the node's contents.
	Read(id NodeID, buf []byte) error
	// Write stores buf (NodeSize bytes) as the node's contents.
	Write(id NodeID, buf []byte) error
	// Free releases the node.
	Free(id NodeID) error
	// Meta returns the tree metadata blob (root pointer, height, ...).
	Meta() ([]byte, error)
	// SetMeta stores the tree metadata blob (at most MetaSize bytes).
	SetMeta([]byte) error
	// Stats reports accumulated node I/O counts.
	Stats() Stats
	// ResetStats zeroes the counters.
	ResetStats()
}

// MetaSize is the maximum metadata blob size.
const MetaSize = 256

// Stats counts logical node accesses. For sbspace stores the underlying
// buffer-pool stats additionally capture physical page I/O.
type Stats struct {
	NodeReads  uint64
	NodeWrites uint64
	NodeAllocs uint64
	NodeFrees  uint64
}

// Sub returns s - o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		NodeReads:  s.NodeReads - o.NodeReads,
		NodeWrites: s.NodeWrites - o.NodeWrites,
		NodeAllocs: s.NodeAllocs - o.NodeAllocs,
		NodeFrees:  s.NodeFrees - o.NodeFrees,
	}
}

// ErrNoSuchNode is returned for reads of unallocated nodes.
var ErrNoSuchNode = errors.New("nodestore: no such node")

// MemStore is an in-memory node store.
type MemStore struct {
	mu    sync.Mutex
	nodes map[NodeID][]byte
	next  NodeID
	free  []NodeID
	meta  []byte
	stats Stats
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{nodes: make(map[NodeID][]byte), next: 1}
}

// Alloc implements Store.
func (m *MemStore) Alloc() (NodeID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var id NodeID
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		id = m.next
		m.next++
	}
	m.nodes[id] = make([]byte, NodeSize)
	m.stats.NodeAllocs++
	return id, nil
}

// Read implements Store.
func (m *MemStore) Read(id NodeID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	copy(buf, n)
	m.stats.NodeReads++
	return nil
}

// Write implements Store.
func (m *MemStore) Write(id NodeID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	copy(n, buf)
	m.stats.NodeWrites++
	return nil
}

// Free implements Store.
func (m *MemStore) Free(id NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	delete(m.nodes, id)
	m.free = append(m.free, id)
	m.stats.NodeFrees++
	return nil
}

// Meta implements Store.
func (m *MemStore) Meta() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.meta...), nil
}

// SetMeta implements Store.
func (m *MemStore) SetMeta(b []byte) error {
	if len(b) > MetaSize {
		return fmt.Errorf("nodestore: metadata too large (%d)", len(b))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.meta = append([]byte(nil), b...)
	return nil
}

// Stats implements Store.
func (m *MemStore) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats implements Store.
func (m *MemStore) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// NodeCount returns the number of live nodes (tests).
func (m *MemStore) NodeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.nodes)
}

// be64/putBE64 helpers for meta encoding convenience.
func be64(b []byte) uint64       { return binary.BigEndian.Uint64(b) }
func putBE64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }
