package nodestore

import "sync"

// latchStripes is the number of lock stripes in a LatchTable. Striping keeps
// the table allocation-free and bounded: two distinct nodes may share a
// stripe (false sharing costs a little concurrency, never correctness).
const latchStripes = 64

// LatchTable provides per-node read/write latches for concurrent tree
// traversal — the crabbing protocol of the parallel scan path. Readers take
// RLock on a node before decoding it and hold it until the child's latch is
// acquired (latch-coupling), so a concurrent structural modification under
// the write latch can never be observed half-applied.
//
// Latches are striped sync.RWMutexes keyed by NodeID. They are not
// re-entrant: a holder must not re-acquire the same node, and because two
// node ids may map to one stripe, a goroutine must never hold more than one
// read latch except during the parent→child crab (parent and child on the
// same stripe would self-deadlock under Lock, so writers latch one node at a
// time, and the read-side crab uses TryRLock with a same-stripe fast path).
type LatchTable struct {
	stripes [latchStripes]sync.RWMutex
}

// NewLatchTable returns an empty latch table.
func NewLatchTable() *LatchTable { return &LatchTable{} }

func (lt *LatchTable) stripe(id NodeID) *sync.RWMutex {
	return &lt.stripes[uint64(id)%latchStripes]
}

// RLock read-latches a node. The nil table is a no-op (serial scans skip
// latching entirely).
func (lt *LatchTable) RLock(id NodeID) {
	if lt == nil {
		return
	}
	lt.stripe(id).RLock()
}

// RUnlock releases a read latch.
func (lt *LatchTable) RUnlock(id NodeID) {
	if lt == nil {
		return
	}
	lt.stripe(id).RUnlock()
}

// Lock write-latches a node (structural modification).
func (lt *LatchTable) Lock(id NodeID) {
	if lt == nil {
		return
	}
	lt.stripe(id).Lock()
}

// Unlock releases a write latch.
func (lt *LatchTable) Unlock(id NodeID) {
	if lt == nil {
		return
	}
	lt.stripe(id).Unlock()
}

// Crab performs the read-latch crabbing step of a descent: it acquires the
// child's read latch before releasing the parent's, so the reader never
// observes the subtree without at least one latch held. When parent and
// child share a stripe the latch is simply retained (a stripe's RWMutex is
// not re-entrant, and the shared stripe already covers both nodes).
func (lt *LatchTable) Crab(parent, child NodeID) {
	if lt == nil {
		return
	}
	ps, cs := lt.stripe(parent), lt.stripe(child)
	if ps == cs {
		return // same stripe: the held read latch already covers the child
	}
	cs.RLock()
	ps.RUnlock()
}
