package nodestore

import (
	"fmt"
	"sync"

	"repro/internal/lock"
	"repro/internal/sbspace"
)

// Placement selects how index nodes map onto sbspace large objects
// (Section 5.3): the whole index in a single large object (the paper's
// prototype choice, least concurrency), one LO per node (fat handles, many
// opens/closes), or one LO per fixed-size group of nodes ("subtrees", the
// in-between the paper suggests investigating).
type Placement struct {
	// GroupSize is the number of nodes per large object; 0 means the whole
	// index lives in the anchor large object.
	GroupSize int
}

// SingleLO places every node in the anchor large object.
var SingleLO = Placement{GroupSize: 0}

// PerNodeLO places every node in its own large object.
var PerNodeLO = Placement{GroupSize: 1}

// PerSubtreeLO places groups of n nodes per large object.
func PerSubtreeLO(n int) Placement { return Placement{GroupSize: n} }

// Anchor large-object layout:
//
//	[0:8)        magic
//	[8:8+256)    tree metadata blob
//	[264:272)    next node id
//	[272:280)    free-list head
//	[280:288)    group size
//	[288:...)    directory: group -> LO handle, 16 bytes each (grouped mode)
//
// In single-LO mode node n's bytes live in the anchor at offset n*NodeSize
// (node ids start at 1, so the first node starts one node-size in, past the
// header region).
const (
	loStoreMagic = 0x4752414E // "GRAN"
	metaOff      = 8
	nextIDOff    = metaOff + MetaSize
	freeHeadOff  = nextIDOff + 8
	groupSizeOff = freeHeadOff + 8
	dirOff       = groupSizeOff + 8
)

// LOStore is a node store backed by sbspace large objects. All operations
// are serialised on an internal mutex: parallel scan workers read nodes
// concurrently, and both the one-slot group-LO cache and the stats tallies
// are shared state a per-node latch cannot protect.
type LOStore struct {
	mu        sync.Mutex
	space     *sbspace.Space
	tx        lock.TxID
	iso       lock.IsolationLevel
	mode      sbspace.OpenMode
	anchor    *sbspace.LargeObject
	handle    sbspace.Handle
	groupSize int

	nextID   NodeID
	freeHead NodeID
	dir      []sbspace.Handle // group -> handle (grouped mode, cached)
	stats    Stats

	// One-slot cache of the most recently opened group large object:
	// consecutive accesses within the same group (a subtree) reuse the open
	// LO instead of paying an open/close per node — the benefit of the
	// "several nodes per large object" design Section 5.3 suggests
	// investigating.
	cachedGroup int
	cachedLO    *sbspace.LargeObject
	cachedMode  sbspace.OpenMode
}

// CreateLO creates a new index storage anchor in the space and returns the
// open store plus the anchor handle (which the access method records in its
// table, per grt_create step 6).
func CreateLO(space *sbspace.Space, tx lock.TxID, iso lock.IsolationLevel, pl Placement) (*LOStore, sbspace.Handle, error) {
	h, err := space.Create(tx)
	if err != nil {
		return nil, sbspace.NilHandle, err
	}
	lo, err := space.Open(tx, h, sbspace.ReadWrite, iso)
	if err != nil {
		return nil, sbspace.NilHandle, err
	}
	s := &LOStore{
		space: space, tx: tx, iso: iso, mode: sbspace.ReadWrite,
		anchor: lo, handle: h, groupSize: pl.GroupSize, nextID: 1,
	}
	var hdr [dirOff]byte
	putBE64(hdr[0:8], loStoreMagic)
	putBE64(hdr[nextIDOff:nextIDOff+8], uint64(s.nextID))
	putBE64(hdr[freeHeadOff:freeHeadOff+8], uint64(s.freeHead))
	putBE64(hdr[groupSizeOff:groupSizeOff+8], uint64(s.groupSize))
	if _, err := lo.WriteAt(hdr[:], 0); err != nil {
		return nil, sbspace.NilHandle, err
	}
	return s, h, nil
}

// OpenLO opens an existing index anchor (grt_open steps 3–4).
func OpenLO(space *sbspace.Space, tx lock.TxID, iso lock.IsolationLevel, h sbspace.Handle, mode sbspace.OpenMode) (*LOStore, error) {
	lo, err := space.Open(tx, h, mode, iso)
	if err != nil {
		return nil, err
	}
	var hdr [dirOff]byte
	if _, err := lo.ReadAt(hdr[:], 0); err != nil {
		lo.Close()
		return nil, err
	}
	if be64(hdr[0:8]) != loStoreMagic {
		lo.Close()
		return nil, fmt.Errorf("nodestore: %v is not an index anchor", h)
	}
	s := &LOStore{
		space: space, tx: tx, iso: iso, mode: mode, anchor: lo, handle: h,
		nextID:    NodeID(be64(hdr[nextIDOff:])),
		freeHead:  NodeID(be64(hdr[freeHeadOff:])),
		groupSize: int(be64(hdr[groupSizeOff:])),
	}
	if s.groupSize > 0 {
		groups := s.groupCount()
		buf := make([]byte, sbspace.HandleSize)
		for g := 0; g < groups; g++ {
			if _, err := lo.ReadAt(buf, int64(dirOff+g*sbspace.HandleSize)); err != nil {
				lo.Close()
				return nil, err
			}
			s.dir = append(s.dir, sbspace.DecodeHandle(buf))
		}
	}
	return s, nil
}

// Handle returns the anchor handle.
func (s *LOStore) Handle() sbspace.Handle { return s.handle }

// Close closes the anchor large object (grt_close step 2) and any cached
// group object.
func (s *LOStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropCache()
	return s.anchor.Close()
}

func (s *LOStore) dropCache() {
	if s.cachedLO != nil {
		s.cachedLO.Close()
		s.cachedLO = nil
	}
}

// openGroup returns an open large object for the group, reusing the cached
// one when the group and mode allow.
func (s *LOStore) openGroup(group int, mode sbspace.OpenMode) (*sbspace.LargeObject, error) {
	if s.cachedLO != nil && s.cachedGroup == group &&
		(s.cachedMode == sbspace.ReadWrite || mode == sbspace.ReadOnly) {
		return s.cachedLO, nil
	}
	s.dropCache()
	lo, err := s.space.Open(s.tx, s.dir[group], mode, s.iso)
	if err != nil {
		return nil, err
	}
	s.cachedLO = lo
	s.cachedGroup = group
	s.cachedMode = mode
	return lo, nil
}

// Drop drops every large object used by the index (grt_drop step 2).
func (s *LOStore) Drop() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropCache()
	for _, h := range s.dir {
		if h != sbspace.NilHandle {
			if err := s.space.Drop(s.tx, h); err != nil {
				return err
			}
		}
	}
	s.anchor.Close()
	return s.space.Drop(s.tx, s.handle)
}

func (s *LOStore) groupCount() int {
	if s.groupSize <= 0 {
		return 0
	}
	n := int(s.nextID) - 1
	return (n + s.groupSize - 1) / s.groupSize
}

func (s *LOStore) persistHeader() error {
	var buf [8]byte
	putBE64(buf[:], uint64(s.nextID))
	if _, err := s.anchor.WriteAt(buf[:], nextIDOff); err != nil {
		return err
	}
	putBE64(buf[:], uint64(s.freeHead))
	_, err := s.anchor.WriteAt(buf[:], freeHeadOff)
	return err
}

// Alloc implements Store.
func (s *LOStore) Alloc() (NodeID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.NodeAllocs++
	if s.freeHead != NilNode {
		id := s.freeHead
		var next [8]byte
		if err := s.readRaw(id, next[:], 0); err != nil {
			return NilNode, err
		}
		s.freeHead = NodeID(be64(next[:]))
		zero := make([]byte, NodeSize)
		if err := s.writeRaw(id, zero); err != nil {
			return NilNode, err
		}
		return id, s.persistHeader()
	}
	id := s.nextID
	s.nextID++
	if s.groupSize > 0 {
		group := int(id-1) / s.groupSize
		for len(s.dir) <= group {
			h, err := s.space.Create(s.tx)
			if err != nil {
				return NilNode, err
			}
			// Size the group LO eagerly so node offsets are stable.
			glo, err := s.space.Open(s.tx, h, sbspace.ReadWrite, s.iso)
			if err != nil {
				return NilNode, err
			}
			if err := glo.Truncate(int64(s.groupSize) * NodeSize); err != nil {
				glo.Close()
				return NilNode, err
			}
			glo.Close()
			buf := make([]byte, sbspace.HandleSize)
			h.Encode(buf)
			if _, err := s.anchor.WriteAt(buf, int64(dirOff+len(s.dir)*sbspace.HandleSize)); err != nil {
				return NilNode, err
			}
			s.dir = append(s.dir, h)
		}
	}
	zero := make([]byte, NodeSize)
	if err := s.writeRaw(id, zero); err != nil {
		return NilNode, err
	}
	return id, s.persistHeader()
}

// Read implements Store.
func (s *LOStore) Read(id NodeID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.NodeReads++
	return s.readRaw(id, buf[:NodeSize], 0)
}

// Write implements Store.
func (s *LOStore) Write(id NodeID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.NodeWrites++
	return s.writeRaw(id, buf[:NodeSize])
}

// Free implements Store.
func (s *LOStore) Free(id NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.NodeFrees++
	var next [8]byte
	putBE64(next[:], uint64(s.freeHead))
	if err := s.writeRawAt(id, next[:], 0); err != nil {
		return err
	}
	s.freeHead = id
	return s.persistHeader()
}

// Meta implements Store.
func (s *LOStore) Meta() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, MetaSize)
	if _, err := s.anchor.ReadAt(buf, metaOff); err != nil {
		return nil, err
	}
	return buf, nil
}

// SetMeta implements Store.
func (s *LOStore) SetMeta(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(b) > MetaSize {
		return fmt.Errorf("nodestore: metadata too large (%d)", len(b))
	}
	buf := make([]byte, MetaSize)
	copy(buf, b)
	_, err := s.anchor.WriteAt(buf, metaOff)
	return err
}

// Stats implements Store.
func (s *LOStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *LOStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// readRaw reads len(buf) bytes from node id starting at off within the node.
func (s *LOStore) readRaw(id NodeID, buf []byte, off int64) error {
	if s.groupSize <= 0 {
		_, err := s.anchor.ReadAt(buf, int64(id)*NodeSize+off)
		return err
	}
	group := int(id-1) / s.groupSize
	idx := int64(id-1) % int64(s.groupSize)
	if group >= len(s.dir) {
		return fmt.Errorf("%w: %d (group %d of %d)", ErrNoSuchNode, id, group, len(s.dir))
	}
	glo, err := s.openGroup(group, s.mode)
	if err != nil {
		return err
	}
	_, err = glo.ReadAt(buf, idx*NodeSize+off)
	return err
}

func (s *LOStore) writeRaw(id NodeID, buf []byte) error { return s.writeRawAt(id, buf, 0) }

func (s *LOStore) writeRawAt(id NodeID, buf []byte, off int64) error {
	if s.groupSize <= 0 {
		_, err := s.anchor.WriteAt(buf, int64(id)*NodeSize+off)
		return err
	}
	group := int(id-1) / s.groupSize
	idx := int64(id-1) % int64(s.groupSize)
	if group >= len(s.dir) {
		return fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	glo, err := s.openGroup(group, sbspace.ReadWrite)
	if err != nil {
		return err
	}
	_, err = glo.WriteAt(buf, idx*NodeSize+off)
	return err
}
