// Package sbspace implements smart-blob spaces: the Informix storage option
// the paper's DataBlade uses for its indices (Section 5.3). An sbspace
// stores large objects ("smart blobs") striped over pages, addressed by
// handles, with the server's automatic two-phase locking at the
// large-object level:
//
//   - opening a large object acquires a shared (read) or exclusive (write)
//     lock on the whole object;
//   - exclusive locks are held to transaction end;
//   - shared locks are released on close under Committed Read, but only at
//     transaction end under Repeatable Read — exactly the inflexibility the
//     paper criticises ("it is not possible to unlock a large object storing
//     some internal node while traversing a tree").
//
// The developer "may vary the number of large objects used for storing
// index data" — one LO for the whole index, one per node, or one per
// subtree; the grtree package exposes that placement choice, and experiment
// P3 measures it.
package sbspace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Handle identifies a large object within a space. ID is a space-unique
// generation stamp that detects dangling handles after a drop reuses the
// header page. The paper notes large-object handles "are relatively large"
// for storing in index nodes; HandleSize reflects that in our simulation.
type Handle struct {
	Space  uint32
	Header storage.PageID
	ID     uint32
}

// HandleSize is the serialized size of a Handle in bytes. (Informix LO
// handles are 72+ bytes; we carry 16 to keep the relative cost visible
// without caricature.)
const HandleSize = 16

// NilHandle is the zero Handle.
var NilHandle = Handle{}

// Encode serializes the handle.
func (h Handle) Encode(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:4], h.Space)
	binary.BigEndian.PutUint64(buf[4:12], uint64(h.Header))
	binary.BigEndian.PutUint32(buf[12:16], h.ID)
}

// DecodeHandle deserializes a handle.
func DecodeHandle(buf []byte) Handle {
	return Handle{
		Space:  binary.BigEndian.Uint32(buf[0:4]),
		Header: storage.PageID(binary.BigEndian.Uint64(buf[4:12])),
		ID:     binary.BigEndian.Uint32(buf[12:16]),
	}
}

func (h Handle) String() string { return fmt.Sprintf("lo(%d:%d#%d)", h.Space, h.Header, h.ID) }

func (h Handle) resource() lock.Resource {
	return lock.Resource{Kind: lock.KindLargeObject, A: uint64(h.Space), B: uint64(h.Header)}
}

// OpenMode selects read-only or read-write access.
type OpenMode int

const (
	// ReadOnly opens with a shared lock.
	ReadOnly OpenMode = iota
	// ReadWrite opens with an exclusive lock.
	ReadWrite
)

// Journal receives physical before/after images of page updates; the engine
// wires the WAL here. A nil journal disables logging.
type Journal interface {
	LogUpdate(tx uint64, space uint32, page uint64, offset uint16, before, after []byte) error
}

// Stats counts sbspace operations; experiment P3 reports them.
type Stats struct {
	Creates uint64
	Opens   uint64
	Closes  uint64
	Drops   uint64
}

// ErrClosed is returned when using a closed large object.
var ErrClosed = errors.New("sbspace: large object is closed")

// Large-object header page layout:
//
//	[0:4)   magic
//	[4:12)  logical size in bytes
//	[12:20) page id of first indirect page (0 = none)
//	[20:24) number of direct slots used
//	[24:28) large-object id (handle generation stamp)
//	[28:32) reserved
//	[32:)   direct data-page ids, 8 bytes each
//
// Indirect page layout: [0:8) next indirect page id, then data-page ids.
const (
	loMagic       = 0x534C4F42 // "SLOB"
	loHeaderFixed = 32
	directSlots   = (storage.PageSize - loHeaderFixed) / 8
	indirectSlots = (storage.PageSize - 8) / 8
)

// Space metadata page (always page 1 of the space's pager):
//
//	[0:4) magic, [4:8) next large-object id
const spaceMetaMagic = 0x53504D54 // "SPMT"

// Space is one smart-blob space.
type Space struct {
	ID   uint32
	Name string

	mu      sync.Mutex
	bp      *storage.BufferPool
	locks   *lock.Manager
	journal Journal
	stats   Stats
	obs     ObsCounters
}

// ObsCounters mirrors the space's large-object operation counters into an
// obs registry. Nil fields are no-ops; increments happen at exactly the
// sites that feed Stats, so the two views stay bit-identical.
type ObsCounters struct {
	Creates, Opens, Closes, Drops *obs.Counter
}

// SetObs attaches mirror counters (call before concurrent use).
func (s *Space) SetObs(o ObsCounters) { s.obs = o }

// New creates a space over the buffer pool with the given lock manager.
func New(id uint32, name string, bp *storage.BufferPool, locks *lock.Manager) *Space {
	return &Space{ID: id, Name: name, bp: bp, locks: locks}
}

// SetJournal attaches a WAL journal; subsequent writes are logged.
func (s *Space) SetJournal(j Journal) { s.journal = j }

// Pool returns the space's buffer pool (I/O statistics live there).
func (s *Space) Pool() *storage.BufferPool { return s.bp }

// Stats returns a snapshot of the operation counters.
func (s *Space) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// nextLOID mints a space-unique large-object id, persisted in the space
// metadata page so dangling handles are detected across restarts.
func (s *Space) nextLOID() (uint32, error) {
	if s.bp.Pager().NumPages() < 2 {
		f, err := s.bp.Allocate() // becomes page 1
		if err != nil {
			return 0, err
		}
		binary.BigEndian.PutUint32(f.Data[0:4], spaceMetaMagic)
		binary.BigEndian.PutUint32(f.Data[4:8], 1)
		s.bp.Unpin(f, true)
	}
	f, err := s.bp.Fetch(1)
	if err != nil {
		return 0, err
	}
	if binary.BigEndian.Uint32(f.Data[0:4]) != spaceMetaMagic {
		// Page 1 predates this space's metadata (or belongs to another
		// structure); fall back to an in-memory counter page claim.
		s.bp.Unpin(f, false)
		return 0, fmt.Errorf("sbspace: space %d has no metadata page", s.ID)
	}
	id := binary.BigEndian.Uint32(f.Data[4:8])
	binary.BigEndian.PutUint32(f.Data[4:8], id+1)
	s.bp.Unpin(f, true)
	return id, nil
}

// Create allocates a new, empty large object owned by tx (exclusively
// locked until transaction end).
func (s *Space) Create(tx lock.TxID) (Handle, error) {
	id, err := s.nextLOID()
	if err != nil {
		return NilHandle, err
	}
	f, err := s.bp.Allocate()
	if err != nil {
		return NilHandle, err
	}
	binary.BigEndian.PutUint32(f.Data[0:4], loMagic)
	binary.BigEndian.PutUint32(f.Data[24:28], id)
	s.bp.Unpin(f, true)
	h := Handle{Space: s.ID, Header: f.ID, ID: id}
	if err := s.locks.Acquire(tx, h.resource(), lock.Exclusive); err != nil {
		return NilHandle, err
	}
	s.mu.Lock()
	s.stats.Creates++
	s.mu.Unlock()
	s.obs.Creates.Inc()
	return h, nil
}

// Open opens the large object in the given mode under the transaction's
// isolation level, acquiring the automatic LO-level lock.
func (s *Space) Open(tx lock.TxID, h Handle, mode OpenMode, iso lock.IsolationLevel) (*LargeObject, error) {
	if h.Space != s.ID {
		return nil, fmt.Errorf("sbspace: handle %v belongs to another space (this is %d)", h, s.ID)
	}
	lockMode := lock.Shared
	if mode == ReadWrite {
		lockMode = lock.Exclusive
	}
	locked := false
	if mode == ReadWrite || iso != lock.DirtyRead {
		if err := s.locks.Acquire(tx, h.resource(), lockMode); err != nil {
			return nil, err
		}
		locked = true
	}
	// Validate the header.
	f, err := s.bp.Fetch(h.Header)
	if err != nil {
		if locked {
			s.locks.Release(tx, h.resource())
		}
		return nil, err
	}
	magic := binary.BigEndian.Uint32(f.Data[0:4])
	loID := binary.BigEndian.Uint32(f.Data[24:28])
	s.bp.Unpin(f, false)
	if magic != loMagic || loID != h.ID {
		if locked {
			s.locks.Release(tx, h.resource())
		}
		return nil, fmt.Errorf("sbspace: %v is not a (live) large object", h)
	}
	s.mu.Lock()
	s.stats.Opens++
	s.mu.Unlock()
	s.obs.Opens.Inc()
	return &LargeObject{space: s, h: h, tx: tx, mode: mode, iso: iso, locked: locked}, nil
}

// Drop deletes the large object and frees its pages.
func (s *Space) Drop(tx lock.TxID, h Handle) error {
	if err := s.locks.Acquire(tx, h.resource(), lock.Exclusive); err != nil {
		return err
	}
	lo := &LargeObject{space: s, h: h, tx: tx, mode: ReadWrite, iso: lock.RepeatableRead, locked: true}
	pages, err := lo.dataPages()
	if err != nil {
		return err
	}
	for _, pid := range pages {
		if pid != storage.InvalidPage {
			if err := s.bp.Free(pid); err != nil {
				return err
			}
		}
	}
	// Free indirect chain.
	next, err := lo.firstIndirect()
	if err != nil {
		return err
	}
	for next != storage.InvalidPage {
		f, err := s.bp.Fetch(next)
		if err != nil {
			return err
		}
		following := storage.PageID(binary.BigEndian.Uint64(f.Data[0:8]))
		s.bp.Unpin(f, false)
		if err := s.bp.Free(next); err != nil {
			return err
		}
		next = following
	}
	if err := s.bp.Free(h.Header); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Drops++
	s.mu.Unlock()
	s.obs.Drops.Inc()
	return nil
}

// ReleaseTxLocks is invoked by the engine's transaction-end callback.
// (The lock manager's ReleaseAll covers it too; this exists for tests that
// drive the space without an engine.)
func (s *Space) ReleaseTxLocks(tx lock.TxID) { s.locks.ReleaseAll(tx) }

// LargeObject is an open smart blob.
type LargeObject struct {
	space  *Space
	h      Handle
	tx     lock.TxID
	mode   OpenMode
	iso    lock.IsolationLevel
	locked bool
	closed bool
}

// Handle returns the object's handle.
func (lo *LargeObject) Handle() Handle { return lo.h }

// Close closes the object. Under Committed Read a shared lock is released
// now; exclusive locks (and, under Repeatable Read, shared locks) persist to
// transaction end — Informix's behaviour per Section 5.3.
func (lo *LargeObject) Close() error {
	if lo.closed {
		return ErrClosed
	}
	lo.closed = true
	s := lo.space
	s.mu.Lock()
	s.stats.Closes++
	s.mu.Unlock()
	s.obs.Closes.Inc()
	// Read locks release at close except under REPEATABLE READ, which keeps
	// them to transaction end so a re-traversal sees the same tree
	// (Section 5.3: "it is not possible to unlock a large object ... while
	// traversing a tree"). SNAPSHOT releases here too: its read stability
	// comes from MVCC visibility at rid resolution, and the LO lock only
	// protects the physical traversal of the statement in progress.
	if lo.locked && lo.mode == ReadOnly && lo.iso != lock.RepeatableRead {
		s.locks.Release(lo.tx, lo.h.resource())
	}
	return nil
}

// Size returns the logical size in bytes.
func (lo *LargeObject) Size() (int64, error) {
	if lo.closed {
		return 0, ErrClosed
	}
	f, err := lo.space.bp.Fetch(lo.h.Header)
	if err != nil {
		return 0, err
	}
	size := int64(binary.BigEndian.Uint64(f.Data[4:12]))
	lo.space.bp.Unpin(f, false)
	return size, nil
}

// ReadAt reads len(buf) bytes at offset off; reads past the end are
// zero-filled (sparse semantics) up to the logical size and return io-style
// short counts beyond it.
func (lo *LargeObject) ReadAt(buf []byte, off int64) (int, error) {
	if lo.closed {
		return 0, ErrClosed
	}
	size, err := lo.Size()
	if err != nil {
		return 0, err
	}
	if off >= size {
		return 0, nil
	}
	n := len(buf)
	if off+int64(n) > size {
		n = int(size - off)
	}
	read := 0
	for read < n {
		pageIdx := (off + int64(read)) / storage.PageSize
		inPage := int((off + int64(read)) % storage.PageSize)
		chunk := storage.PageSize - inPage
		if chunk > n-read {
			chunk = n - read
		}
		pid, err := lo.pageAt(pageIdx, false)
		if err != nil {
			return read, err
		}
		if pid == storage.InvalidPage {
			for i := 0; i < chunk; i++ {
				buf[read+i] = 0
			}
		} else {
			f, err := lo.space.bp.Fetch(pid)
			if err != nil {
				return read, err
			}
			copy(buf[read:read+chunk], f.Data[inPage:inPage+chunk])
			lo.space.bp.Unpin(f, false)
		}
		read += chunk
	}
	return n, nil
}

// WriteAt writes buf at offset off, extending the object as needed. The
// object must be open ReadWrite.
func (lo *LargeObject) WriteAt(buf []byte, off int64) (int, error) {
	if lo.closed {
		return 0, ErrClosed
	}
	if lo.mode != ReadWrite {
		return 0, fmt.Errorf("sbspace: write to read-only large object %v", lo.h)
	}
	written := 0
	for written < len(buf) {
		pageIdx := (off + int64(written)) / storage.PageSize
		inPage := int((off + int64(written)) % storage.PageSize)
		chunk := storage.PageSize - inPage
		if chunk > len(buf)-written {
			chunk = len(buf) - written
		}
		pid, err := lo.pageAt(pageIdx, true)
		if err != nil {
			return written, err
		}
		f, err := lo.space.bp.Fetch(pid)
		if err != nil {
			return written, err
		}
		if j := lo.space.journal; j != nil {
			before := append([]byte(nil), f.Data[inPage:inPage+chunk]...)
			if err := j.LogUpdate(uint64(lo.tx), lo.space.ID, uint64(pid), uint16(inPage), before, buf[written:written+chunk]); err != nil {
				lo.space.bp.Unpin(f, false)
				return written, err
			}
		}
		copy(f.Data[inPage:inPage+chunk], buf[written:written+chunk])
		lo.space.bp.Unpin(f, true)
		written += chunk
	}
	// Extend the logical size.
	end := off + int64(len(buf))
	f, err := lo.space.bp.Fetch(lo.h.Header)
	if err != nil {
		return written, err
	}
	if cur := int64(binary.BigEndian.Uint64(f.Data[4:12])); end > cur {
		binary.BigEndian.PutUint64(f.Data[4:12], uint64(end))
		lo.space.bp.Unpin(f, true)
	} else {
		lo.space.bp.Unpin(f, false)
	}
	return written, nil
}

// Truncate sets the logical size (shrinking does not free pages; vacuuming
// drops and recreates objects instead, mirroring Section 5.5's advice).
func (lo *LargeObject) Truncate(size int64) error {
	if lo.closed {
		return ErrClosed
	}
	if lo.mode != ReadWrite {
		return fmt.Errorf("sbspace: truncate of read-only large object")
	}
	f, err := lo.space.bp.Fetch(lo.h.Header)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint64(f.Data[4:12], uint64(size))
	lo.space.bp.Unpin(f, true)
	return nil
}

// firstIndirect returns the first indirect page id.
func (lo *LargeObject) firstIndirect() (storage.PageID, error) {
	f, err := lo.space.bp.Fetch(lo.h.Header)
	if err != nil {
		return storage.InvalidPage, err
	}
	id := storage.PageID(binary.BigEndian.Uint64(f.Data[12:20]))
	lo.space.bp.Unpin(f, false)
	return id, nil
}

// dataPages lists all allocated data page ids (for Drop).
func (lo *LargeObject) dataPages() ([]storage.PageID, error) {
	var out []storage.PageID
	f, err := lo.space.bp.Fetch(lo.h.Header)
	if err != nil {
		return nil, err
	}
	used := binary.BigEndian.Uint32(f.Data[20:24])
	for i := uint32(0); i < used && i < directSlots; i++ {
		out = append(out, storage.PageID(binary.BigEndian.Uint64(f.Data[loHeaderFixed+8*i:])))
	}
	next := storage.PageID(binary.BigEndian.Uint64(f.Data[12:20]))
	lo.space.bp.Unpin(f, false)
	for next != storage.InvalidPage {
		fi, err := lo.space.bp.Fetch(next)
		if err != nil {
			return nil, err
		}
		for i := 0; i < indirectSlots; i++ {
			pid := storage.PageID(binary.BigEndian.Uint64(fi.Data[8+8*i:]))
			if pid != storage.InvalidPage {
				out = append(out, pid)
			}
		}
		next = storage.PageID(binary.BigEndian.Uint64(fi.Data[0:8]))
		lo.space.bp.Unpin(fi, false)
	}
	return out, nil
}

// pageAt maps a logical page index to a data page, optionally allocating.
func (lo *LargeObject) pageAt(idx int64, alloc bool) (storage.PageID, error) {
	bp := lo.space.bp
	if idx < directSlots {
		f, err := bp.Fetch(lo.h.Header)
		if err != nil {
			return storage.InvalidPage, err
		}
		used := binary.BigEndian.Uint32(f.Data[20:24])
		slot := loHeaderFixed + 8*idx
		pid := storage.PageID(binary.BigEndian.Uint64(f.Data[slot:]))
		if pid != storage.InvalidPage || !alloc {
			bp.Unpin(f, false)
			return pid, nil
		}
		nf, err := bp.Allocate()
		if err != nil {
			bp.Unpin(f, false)
			return storage.InvalidPage, err
		}
		pid = nf.ID
		bp.Unpin(nf, true)
		binary.BigEndian.PutUint64(f.Data[slot:], uint64(pid))
		if uint32(idx)+1 > used {
			binary.BigEndian.PutUint32(f.Data[20:24], uint32(idx)+1)
		}
		bp.Unpin(f, true)
		return pid, nil
	}

	// Walk (allocating, if requested) the indirect chain.
	rel := idx - directSlots
	hop := rel / indirectSlots
	slotIdx := rel % indirectSlots

	f, err := bp.Fetch(lo.h.Header)
	if err != nil {
		return storage.InvalidPage, err
	}
	cur := storage.PageID(binary.BigEndian.Uint64(f.Data[12:20]))
	if cur == storage.InvalidPage {
		if !alloc {
			bp.Unpin(f, false)
			return storage.InvalidPage, nil
		}
		nf, err := bp.Allocate()
		if err != nil {
			bp.Unpin(f, false)
			return storage.InvalidPage, err
		}
		cur = nf.ID
		bp.Unpin(nf, true)
		binary.BigEndian.PutUint64(f.Data[12:20], uint64(cur))
		bp.Unpin(f, true)
	} else {
		bp.Unpin(f, false)
	}

	for h := int64(0); h < hop; h++ {
		fi, err := bp.Fetch(cur)
		if err != nil {
			return storage.InvalidPage, err
		}
		next := storage.PageID(binary.BigEndian.Uint64(fi.Data[0:8]))
		if next == storage.InvalidPage {
			if !alloc {
				bp.Unpin(fi, false)
				return storage.InvalidPage, nil
			}
			nf, err := bp.Allocate()
			if err != nil {
				bp.Unpin(fi, false)
				return storage.InvalidPage, err
			}
			next = nf.ID
			bp.Unpin(nf, true)
			binary.BigEndian.PutUint64(fi.Data[0:8], uint64(next))
			bp.Unpin(fi, true)
		} else {
			bp.Unpin(fi, false)
		}
		cur = next
	}

	fi, err := bp.Fetch(cur)
	if err != nil {
		return storage.InvalidPage, err
	}
	slot := 8 + 8*slotIdx
	pid := storage.PageID(binary.BigEndian.Uint64(fi.Data[slot:]))
	if pid != storage.InvalidPage || !alloc {
		bp.Unpin(fi, false)
		return pid, nil
	}
	nf, err := bp.Allocate()
	if err != nil {
		bp.Unpin(fi, false)
		return storage.InvalidPage, err
	}
	pid = nf.ID
	bp.Unpin(nf, true)
	binary.BigEndian.PutUint64(fi.Data[slot:], uint64(pid))
	bp.Unpin(fi, true)
	return pid, nil
}
