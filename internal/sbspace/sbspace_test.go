package sbspace

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/storage"
)

func newTestSpace(t *testing.T) (*Space, *lock.Manager) {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMemPager(), 256)
	lm := lock.New()
	return New(1, "spc", bp, lm), lm
}

func TestCreateWriteRead(t *testing.T) {
	s, lm := newTestSpace(t)
	h, err := s.Create(1)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := s.Open(1, h, ReadWrite, lock.CommittedRead)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello large object")
	if n, err := lo.WriteAt(msg, 0); err != nil || n != len(msg) {
		t.Fatalf("write: %d %v", n, err)
	}
	if sz, _ := lo.Size(); sz != int64(len(msg)) {
		t.Fatalf("size %d", sz)
	}
	got := make([]byte, len(msg))
	if n, err := lo.ReadAt(got, 0); err != nil || n != len(msg) {
		t.Fatalf("read: %d %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if err := lo.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lo.Close(); err != ErrClosed {
		t.Fatal("double close must fail")
	}
	lm.ReleaseAll(1)
}

func TestCrossPageAndSparse(t *testing.T) {
	s, lm := newTestSpace(t)
	defer lm.ReleaseAll(1)
	h, _ := s.Create(1)
	lo, _ := s.Open(1, h, ReadWrite, lock.CommittedRead)

	// Write spanning three pages at a page-unaligned offset.
	data := bytes.Repeat([]byte("abcdefgh"), 1500) // 12000 bytes
	off := int64(storage.PageSize - 100)
	if _, err := lo.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := lo.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip")
	}
	// The hole before the write reads as zeros.
	hole := make([]byte, 50)
	if n, err := lo.ReadAt(hole, 10); err != nil || n != 50 {
		t.Fatalf("hole read: %d %v", n, err)
	}
	if !bytes.Equal(hole, make([]byte, 50)) {
		t.Fatal("hole must be zero-filled")
	}
	// Reads past the end are short.
	if n, _ := lo.ReadAt(make([]byte, 10), off+int64(len(data))+5); n != 0 {
		t.Fatalf("read past end: %d", n)
	}
}

func TestIndirectPages(t *testing.T) {
	s, lm := newTestSpace(t)
	defer lm.ReleaseAll(1)
	h, _ := s.Create(1)
	lo, _ := s.Open(1, h, ReadWrite, lock.CommittedRead)

	// Write a page far beyond the direct area to force the indirect chain.
	far := int64(directSlots+indirectSlots+10) * storage.PageSize
	probe := []byte("beyond direct pages")
	if _, err := lo.WriteAt(probe, far); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(probe))
	if _, err := lo.ReadAt(got, far); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, probe) {
		t.Fatal("indirect page round trip")
	}
	// Direct-area data coexists.
	if _, err := lo.WriteAt([]byte("front"), 0); err != nil {
		t.Fatal(err)
	}
	front := make([]byte, 5)
	lo.ReadAt(front, 0)
	if string(front) != "front" {
		t.Fatal("front data lost")
	}
}

func TestRandomisedReadWrite(t *testing.T) {
	s, lm := newTestSpace(t)
	defer lm.ReleaseAll(1)
	h, _ := s.Create(1)
	lo, _ := s.Open(1, h, ReadWrite, lock.CommittedRead)

	rng := rand.New(rand.NewSource(11))
	const extent = 64 * 1024
	model := make([]byte, extent)
	for op := 0; op < 300; op++ {
		off := rng.Int63n(extent - 512)
		n := 1 + rng.Intn(511)
		data := make([]byte, n)
		rng.Read(data)
		if _, err := lo.WriteAt(data, off); err != nil {
			t.Fatal(err)
		}
		copy(model[off:], data)
	}
	size, _ := lo.Size()
	got := make([]byte, size)
	if _, err := lo.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model[:size]) {
		t.Fatal("randomised content mismatch")
	}
}

func TestLOLocking(t *testing.T) {
	s, _ := newTestSpace(t)
	h, _ := s.Create(1)
	s.ReleaseTxLocks(1)

	// Two readers under committed read share the object.
	lo1, err := s.Open(1, h, ReadOnly, lock.CommittedRead)
	if err != nil {
		t.Fatal(err)
	}
	lo2, err := s.Open(2, h, ReadOnly, lock.CommittedRead)
	if err != nil {
		t.Fatal(err)
	}
	// A writer blocks until both close.
	opened := make(chan error, 1)
	go func() {
		lo, err := s.Open(3, h, ReadWrite, lock.CommittedRead)
		if err == nil {
			lo.Close()
		}
		opened <- err
	}()
	select {
	case <-opened:
		t.Fatal("writer admitted alongside readers")
	case <-time.After(20 * time.Millisecond):
	}
	lo1.Close()
	lo2.Close() // committed read: closing releases the shared locks
	if err := <-opened; err != nil {
		t.Fatal(err)
	}
	s.ReleaseTxLocks(3)
}

func TestRepeatableReadHoldsSharedLockPastClose(t *testing.T) {
	// Section 5.3: under repeatable read even shared LO locks are released
	// only at transaction end.
	s, lm := newTestSpace(t)
	h, _ := s.Create(1)
	s.ReleaseTxLocks(1)

	lo, err := s.Open(1, h, ReadOnly, lock.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	lo.Close()
	if !lm.TryAcquire(2, lock.Resource{Kind: lock.KindLargeObject, A: 1, B: uint64(h.Header)}, lock.Shared) {
		t.Fatal("second reader must still be able to share")
	}
	lm.ReleaseAll(2)
	if got := lm.HeldCount(1); got != 1 {
		t.Fatalf("repeatable read must hold the S lock past close, held=%d", got)
	}
	s.ReleaseTxLocks(1)
	if lm.HeldCount(1) != 0 {
		t.Fatal("transaction end must release")
	}
}

func TestDirtyReadTakesNoLock(t *testing.T) {
	s, lm := newTestSpace(t)
	h, _ := s.Create(1)
	s.ReleaseTxLocks(1)
	lo, err := s.Open(1, h, ReadOnly, lock.DirtyRead)
	if err != nil {
		t.Fatal(err)
	}
	if lm.HeldCount(1) != 0 {
		t.Fatal("dirty read must not lock")
	}
	lo.Close()
}

func TestWriteToReadOnlyFails(t *testing.T) {
	s, lm := newTestSpace(t)
	defer lm.ReleaseAll(1)
	h, _ := s.Create(1)
	s.ReleaseTxLocks(1)
	lo, _ := s.Open(1, h, ReadOnly, lock.CommittedRead)
	if _, err := lo.WriteAt([]byte("x"), 0); err == nil {
		t.Fatal("write through read-only open must fail")
	}
	if err := lo.Truncate(0); err == nil {
		t.Fatal("truncate through read-only open must fail")
	}
}

func TestDropFreesPages(t *testing.T) {
	s, lm := newTestSpace(t)
	h, _ := s.Create(1)
	lo, _ := s.Open(1, h, ReadWrite, lock.CommittedRead)
	lo.WriteAt(bytes.Repeat([]byte("d"), 5*storage.PageSize), 0)
	lo.Close()
	before := s.Pool().Pager().NumPages()
	if err := s.Drop(1, h); err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(1)
	// Creating a new object of the same size must reuse the freed pages.
	h2, _ := s.Create(2)
	lo2, _ := s.Open(2, h2, ReadWrite, lock.CommittedRead)
	lo2.WriteAt(bytes.Repeat([]byte("e"), 5*storage.PageSize), 0)
	lo2.Close()
	lm.ReleaseAll(2)
	if after := s.Pool().Pager().NumPages(); after > before {
		t.Fatalf("pages not reused: before drop %d, after recreate %d", before, after)
	}
	// Opening a dropped object fails.
	if _, err := s.Open(3, h, ReadOnly, lock.DirtyRead); err == nil {
		t.Fatal("open of dropped LO must fail")
	}
}

func TestHandleEncoding(t *testing.T) {
	h := Handle{Space: 7, Header: 1234}
	buf := make([]byte, HandleSize)
	h.Encode(buf)
	if got := DecodeHandle(buf); got != h {
		t.Fatalf("handle round trip: %v", got)
	}
	if h.String() == "" {
		t.Fatal("handle string")
	}
}

func TestStatsCounting(t *testing.T) {
	s, lm := newTestSpace(t)
	defer lm.ReleaseAll(1)
	h, _ := s.Create(1)
	lo, _ := s.Open(1, h, ReadWrite, lock.CommittedRead)
	lo.Close()
	st := s.Stats()
	if st.Creates != 1 || st.Opens != 1 || st.Closes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

type captureJournal struct{ records int }

func (c *captureJournal) LogUpdate(tx uint64, space uint32, page uint64, off uint16, before, after []byte) error {
	c.records++
	return nil
}

func TestJournalReceivesWrites(t *testing.T) {
	s, lm := newTestSpace(t)
	defer lm.ReleaseAll(1)
	j := &captureJournal{}
	s.SetJournal(j)
	h, _ := s.Create(1)
	lo, _ := s.Open(1, h, ReadWrite, lock.CommittedRead)
	lo.WriteAt([]byte("logged"), 0)
	if j.records == 0 {
		t.Fatal("journal must observe LO writes")
	}
}

func TestOpenWrongSpace(t *testing.T) {
	s, _ := newTestSpace(t)
	if _, err := s.Open(1, Handle{Space: 99, Header: 1}, ReadOnly, lock.DirtyRead); err == nil {
		t.Fatal("cross-space open must fail")
	}
}

func TestTruncate(t *testing.T) {
	s, lm := newTestSpace(t)
	defer lm.ReleaseAll(1)
	h, _ := s.Create(1)
	lo, _ := s.Open(1, h, ReadWrite, lock.CommittedRead)
	lo.WriteAt([]byte("0123456789"), 0)
	if err := lo.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if sz, _ := lo.Size(); sz != 4 {
		t.Fatalf("size after truncate: %d", sz)
	}
	buf := make([]byte, 10)
	n, _ := lo.ReadAt(buf, 0)
	if n != 4 || string(buf[:4]) != "0123" {
		t.Fatalf("read after truncate: %d %q", n, buf[:n])
	}
}
