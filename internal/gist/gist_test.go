package gist

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/chronon"
	"repro/internal/grtree"
	"repro/internal/nodestore"
	"repro/internal/temporal"
)

func TestIntervalClassBruteForce(t *testing.T) {
	tr, err := Create(nodestore.NewMem(), IntervalClass{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	model := map[Payload][2]int64{}
	for i := 0; i < 3000; i++ {
		lo := rng.Int63n(10000)
		hi := lo + rng.Int63n(50)
		p := Payload(i + 1)
		if err := tr.Insert(IntervalKey(lo, hi), p); err != nil {
			t.Fatal(err)
		}
		model[p] = [2]int64{lo, hi}
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		qlo := rng.Int63n(10000)
		qhi := qlo + rng.Int63n(100)
		got, err := tr.Search(IntervalOverlaps{qlo, qhi})
		if err != nil {
			t.Fatal(err)
		}
		want := map[Payload]bool{}
		for p, iv := range model {
			if iv[0] <= qhi && qlo <= iv[1] {
				want[p] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("overlap [%d,%d]: got %d want %d", qlo, qhi, len(got), len(want))
		}
		for _, p := range got {
			if !want[p] {
				t.Fatalf("false positive %d", p)
			}
		}
		// Contains query.
		gotC, err := tr.Search(IntervalContains{qlo, qlo + 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range gotC {
			iv := model[p]
			if !(iv[0] <= qlo && qlo+2 <= iv[1]) {
				t.Fatalf("contains false positive %v", iv)
			}
		}
	}
}

func TestIntervalDelete(t *testing.T) {
	tr, err := Create(nodestore.NewMem(), IntervalClass{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	model := map[Payload][2]int64{}
	for i := 0; i < 800; i++ {
		lo := rng.Int63n(2000)
		hi := lo + rng.Int63n(40)
		p := Payload(i + 1)
		tr.Insert(IntervalKey(lo, hi), p)
		model[p] = [2]int64{lo, hi}
	}
	var ids []Payload
	for p := range model {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, p := range ids[:600] {
		iv := model[p]
		ok, err := tr.Delete(IntervalKey(iv[0], iv[1]), p)
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", p, ok, err)
		}
		delete(model, p)
	}
	if tr.Size() != 200 {
		t.Fatalf("size %d", tr.Size())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Survivors searchable.
	got, _ := tr.Search(IntervalOverlaps{0, 3000})
	if len(got) != 200 {
		t.Fatalf("survivors %d", len(got))
	}
	// Missing delete reports false.
	if ok, _ := tr.Delete(IntervalKey(1, 2), 99999); ok {
		t.Fatal("phantom delete")
	}
}

func TestPersistenceAndKeyClassGuard(t *testing.T) {
	store := nodestore.NewMem()
	tr, _ := Create(store, IntervalClass{})
	for i := int64(0); i < 100; i++ {
		tr.Insert(IntervalKey(i, i+5), Payload(i+1))
	}
	tr2, err := Open(store, IntervalClass{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Size() != 100 || tr2.Height() != tr.Height() {
		t.Fatal("reopen mismatch")
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
	// Opening under a different key class is rejected.
	if _, err := Open(store, NewGRKeyClass(chronon.Fixed(0))); err == nil {
		t.Fatal("key-class mismatch must be rejected")
	}
	if _, err := Open(nodestore.NewMem(), IntervalClass{}); err == nil {
		t.Fatal("open of empty store must fail")
	}
}

func TestOversizedKeyRejected(t *testing.T) {
	tr, _ := Create(nodestore.NewMem(), IntervalClass{})
	if err := tr.Insert(make([]byte, 64), 1); err == nil {
		t.Fatal("oversized key must fail")
	}
}

// randomExtent mirrors the generators used elsewhere.
func randomExtent(rng *rand.Rand, ct chronon.Instant) temporal.Extent {
	c := int64(ct)
	vtb := rng.Int63n(c + 1)
	ttb := vtb + rng.Int63n(c-vtb+1)
	switch rng.Intn(4) {
	case 0:
		return temporal.Extent{TTBegin: chronon.Instant(ttb), TTEnd: chronon.UC, VTBegin: chronon.Instant(vtb), VTEnd: chronon.Instant(vtb + rng.Int63n(60))}
	case 1:
		tte := ttb + rng.Int63n(c-ttb+1)
		return temporal.Extent{TTBegin: chronon.Instant(ttb), TTEnd: chronon.Instant(tte), VTBegin: chronon.Instant(vtb), VTEnd: chronon.Instant(vtb + rng.Int63n(60))}
	case 2:
		return temporal.Extent{TTBegin: chronon.Instant(ttb), TTEnd: chronon.UC, VTBegin: chronon.Instant(vtb), VTEnd: chronon.NOW}
	default:
		tte := ttb + rng.Int63n(c-ttb+1)
		return temporal.Extent{TTBegin: chronon.Instant(ttb), TTEnd: chronon.Instant(tte), VTBegin: chronon.Instant(vtb), VTEnd: chronon.NOW}
	}
}

// TestGRKeyClassMatchesDedicatedTree: the GR-tree-as-GiST-opclass must
// return exactly the dedicated GR-tree's answers for every operator — the
// paper's Section 7 vision, functionally verified.
func TestGRKeyClassMatchesDedicatedTree(t *testing.T) {
	clock := chronon.NewVirtualClock(300)
	ct := clock.Now()
	kc := NewGRKeyClass(clock)
	gt, err := Create(nodestore.NewMem(), kc)
	if err != nil {
		t.Fatal(err)
	}
	dedicated, err := grtree.Create(nodestore.NewMem(), grtree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		e := randomExtent(rng, ct)
		p := uint64(i + 1)
		if err := gt.Insert(GRExtentKey(e), Payload(p)); err != nil {
			t.Fatal(err)
		}
		if err := dedicated.Insert(e, grtree.Payload(p), ct); err != nil {
			t.Fatal(err)
		}
	}
	if err := gt.Check(); err != nil {
		t.Fatal(err)
	}
	ops := map[GROp]grtree.Op{
		GROverlaps: grtree.OpOverlaps, GREqual: grtree.OpEqual,
		GRContains: grtree.OpContains, GRContainedIn: grtree.OpContainedIn,
	}
	// Current time and a later time (growth seen identically by both).
	for _, at := range []chronon.Instant{300, 420} {
		clock.Set(at)
		for trial := 0; trial < 25; trial++ {
			q := randomExtent(rng, 300)
			for gop, dop := range ops {
				got, err := gt.Search(GRQuery{Op: gop, Q: q})
				if err != nil {
					t.Fatal(err)
				}
				want, err := dedicated.SearchAll(grtree.Predicate{Op: dop, Query: q}, at)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("at ct=%d op %v on %v: gist %d vs dedicated %d", at, dop, q, len(got), len(want))
				}
				ws := map[grtree.Payload]bool{}
				for _, p := range want {
					ws[p] = true
				}
				for _, p := range got {
					if !ws[grtree.Payload(p)] {
						t.Fatalf("gist returned %d not in dedicated answer", p)
					}
				}
			}
		}
	}
	// Deletion through the generic path.
	removed, err := gt.Delete(GRExtentKey(temporal.Extent{TTBegin: 1, TTEnd: 2, VTBegin: 1, VTEnd: 2}), 424242)
	if err != nil || removed {
		t.Fatalf("phantom delete: %v %v", removed, err)
	}
}

// TestGRKeyClassSplitQualityGap quantifies the Section 7 trade-off: the
// generic sort-split produces at least as much leaf-bound overlap as the
// dedicated GR-tree's adapted R* split.
func TestGRKeyClassSplitQualityGap(t *testing.T) {
	clock := chronon.NewVirtualClock(300)
	ct := clock.Now()
	gt, _ := Create(nodestore.NewMem(), NewGRKeyClass(clock))
	dedicated, _ := grtree.Create(nodestore.NewMem(), grtree.DefaultConfig())
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		e := randomExtent(rng, ct)
		gt.Insert(GRExtentKey(e), Payload(i+1))
		dedicated.Insert(e, grtree.Payload(i+1), ct)
	}
	// Compare search I/O over the same queries.
	gistReads := func() uint64 { return gt.store.Stats().NodeReads }
	dedReads := func() uint64 { return dedicated.Store().Stats().NodeReads }
	gt.store.ResetStats()
	dedicated.Store().ResetStats()
	for trial := 0; trial < 60; trial++ {
		q := randomExtent(rng, 280)
		if _, err := gt.Search(GRQuery{Op: GROverlaps, Q: q}); err != nil {
			t.Fatal(err)
		}
		if _, err := dedicated.SearchAll(grtree.Predicate{Op: grtree.OpOverlaps, Query: q}, ct); err != nil {
			t.Fatal(err)
		}
	}
	g, d := gistReads(), dedReads()
	t.Logf("search reads: gist-GR %d, dedicated GR-tree %d (ratio %.2f)", g, d, float64(g)/float64(d))
	if g < d/2 {
		t.Fatalf("generic split unexpectedly beats the dedicated split by 2x: %d vs %d", g, d)
	}
}
