// Package gist implements the paper's closing vision (Section 7): "a
// generic extendible tree-based access method ... could be integrated into
// the kernel of the DBMS. Such a generic access method would support the
// broad class of tree-based access methods by providing a simple, high-level
// extension interface that isolates the primitive operations required to
// construct new access methods" — the Generalized Search Tree of
// Hellerstein, Naughton, and Pfeffer [HNP95], as generalized by Aoki
// [AOK98].
//
// The tree structure, node layout, insertion, splitting, deletion, and
// scanning are generic; a KeyClass supplies the four famous extension
// methods (Consistent, Union, Penalty, PickSplit) plus key serialization.
// Package gist ships two key classes: a one-dimensional interval class
// (intervals.go) and the GR-tree's bitemporal regions (grkey.go) — showing
// that the paper's index really is expressible as "specially designed
// operator classes" over the generic method.
package gist

import (
	"encoding/binary"
	"fmt"

	"repro/internal/nodestore"
)

// Query is an opclass-specific search predicate, interpreted only by the
// key class's Consistent method.
type Query any

// KeyClass is the GiST extension interface: the primitive operations a new
// access method must supply [HNP95].
type KeyClass interface {
	// Name identifies the class (recorded in the tree metadata so an index
	// cannot be opened under the wrong class).
	Name() string
	// Consistent reports whether the subtree (or leaf entry) behind key can
	// contain entries satisfying the query. False negatives lose results;
	// false positives only cost I/O.
	Consistent(key []byte, q Query, leaf bool) (bool, error)
	// Union returns a key bounding all the given keys.
	Union(keys [][]byte) ([]byte, error)
	// Penalty estimates the cost of inserting the new key under an existing
	// subtree key (insertion descends along minimum penalty).
	Penalty(existing, newKey []byte) (float64, error)
	// PickSplit partitions the keys of an overfull node into two groups,
	// given as index lists; both must be non-empty.
	PickSplit(keys [][]byte) (left, right []int, err error)
	// Equal reports exact leaf-key equality (deletion locates entries with
	// it).
	Equal(a, b []byte) bool
	// MaxKeySize bounds the serialized key size in bytes.
	MaxKeySize() int
}

// Payload is the opaque value carried by leaf entries (rowids).
type Payload uint64

// Entry is a node entry: a serialized key plus a child node id or payload.
type Entry struct {
	Key []byte
	Ref uint64
}

// Node layout:
//
//	[0:4)  magic "GIST"
//	[4:5)  flags (bit0 leaf)
//	[5:6)  level
//	[6:8)  entry count
//	[8:16) reserved
//	entries: keyLen(2) | key | ref(8)
const (
	nodeMagic  = 0x47495354
	nodeHeader = 16
)

type node struct {
	id      nodestore.NodeID
	leaf    bool
	level   int
	entries []Entry
}

func (n *node) encode(buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	binary.BigEndian.PutUint32(buf[0:4], nodeMagic)
	if n.leaf {
		buf[4] = 1
	}
	buf[5] = byte(n.level)
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(n.entries)))
	off := nodeHeader
	for _, e := range n.entries {
		if off+2+len(e.Key)+8 > len(buf) {
			return fmt.Errorf("gist: node %d overflows its page", n.id)
		}
		binary.BigEndian.PutUint16(buf[off:], uint16(len(e.Key)))
		off += 2
		copy(buf[off:], e.Key)
		off += len(e.Key)
		binary.BigEndian.PutUint64(buf[off:], e.Ref)
		off += 8
	}
	return nil
}

func decodeNode(id nodestore.NodeID, buf []byte) (*node, error) {
	if binary.BigEndian.Uint32(buf[0:4]) != nodeMagic {
		return nil, fmt.Errorf("gist: node %d has bad magic", id)
	}
	n := &node{id: id, leaf: buf[4]&1 != 0, level: int(buf[5])}
	count := int(binary.BigEndian.Uint16(buf[6:8]))
	off := nodeHeader
	for i := 0; i < count; i++ {
		kl := int(binary.BigEndian.Uint16(buf[off:]))
		off += 2
		key := append([]byte(nil), buf[off:off+kl]...)
		off += kl
		ref := binary.BigEndian.Uint64(buf[off:])
		off += 8
		n.entries = append(n.entries, Entry{Key: key, Ref: ref})
	}
	return n, nil
}

// Tree is a generalized search tree over a node store.
type Tree struct {
	store  nodestore.Store
	kc     KeyClass
	root   nodestore.NodeID
	height int
	size   int
	// maxEntries is derived from the key class's MaxKeySize so a full node
	// always fits one page.
	maxEntries int
	epoch      uint64
}

const metaMagic = 0x47535452

// Create initialises an empty tree for the key class.
func Create(store nodestore.Store, kc KeyClass) (*Tree, error) {
	t, err := newTree(store, kc)
	if err != nil {
		return nil, err
	}
	id, err := store.Alloc()
	if err != nil {
		return nil, err
	}
	t.root = id
	t.height = 1
	if err := t.writeNode(&node{id: id, leaf: true}); err != nil {
		return nil, err
	}
	return t, t.saveMeta()
}

// Open loads an existing tree; the key class must match the one it was
// created with.
func Open(store nodestore.Store, kc KeyClass) (*Tree, error) {
	t, err := newTree(store, kc)
	if err != nil {
		return nil, err
	}
	meta, err := store.Meta()
	if err != nil {
		return nil, err
	}
	if len(meta) < 33 || binary.BigEndian.Uint32(meta[0:4]) != metaMagic {
		return nil, fmt.Errorf("gist: store holds no GiST")
	}
	t.root = nodestore.NodeID(binary.BigEndian.Uint64(meta[4:12]))
	t.height = int(binary.BigEndian.Uint64(meta[12:20]))
	t.size = int(binary.BigEndian.Uint64(meta[20:28]))
	nameLen := int(meta[32])
	if 33+nameLen > len(meta) || string(meta[33:33+nameLen]) != kc.Name() {
		return nil, fmt.Errorf("gist: index was created with key class %q, not %q",
			string(meta[33:33+nameLen]), kc.Name())
	}
	return t, nil
}

func newTree(store nodestore.Store, kc KeyClass) (*Tree, error) {
	perEntry := 2 + kc.MaxKeySize() + 8
	max := (nodestore.NodeSize - nodeHeader) / perEntry
	if max < 4 {
		return nil, fmt.Errorf("gist: key class %s keys too large (%d bytes/page entry)", kc.Name(), perEntry)
	}
	return &Tree{store: store, kc: kc, maxEntries: max}, nil
}

func (t *Tree) saveMeta() error {
	name := t.kc.Name()
	meta := make([]byte, 33+len(name))
	binary.BigEndian.PutUint32(meta[0:4], metaMagic)
	binary.BigEndian.PutUint64(meta[4:12], uint64(t.root))
	binary.BigEndian.PutUint64(meta[12:20], uint64(t.height))
	binary.BigEndian.PutUint64(meta[20:28], uint64(t.size))
	meta[32] = byte(len(name))
	copy(meta[33:], name)
	return t.store.SetMeta(meta)
}

// Size returns the number of leaf entries.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// MaxEntries returns the per-node fanout (derived from the key size).
func (t *Tree) MaxEntries() int { return t.maxEntries }

func (t *Tree) readNode(id nodestore.NodeID) (*node, error) {
	buf := make([]byte, nodestore.NodeSize)
	if err := t.store.Read(id, buf); err != nil {
		return nil, err
	}
	return decodeNode(id, buf)
}

func (t *Tree) writeNode(n *node) error {
	buf := make([]byte, nodestore.NodeSize)
	if err := n.encode(buf); err != nil {
		return err
	}
	return t.store.Write(n.id, buf)
}

func keysOf(entries []Entry) [][]byte {
	out := make([][]byte, len(entries))
	for i, e := range entries {
		out[i] = e.Key
	}
	return out
}

// Insert adds a leaf key with its payload.
func (t *Tree) Insert(key []byte, p Payload) error {
	if len(key) > t.kc.MaxKeySize() {
		return fmt.Errorf("gist: key of %d bytes exceeds the class maximum %d", len(key), t.kc.MaxKeySize())
	}
	if err := t.insertAtLevel(Entry{Key: key, Ref: uint64(p)}, 0); err != nil {
		return err
	}
	t.size++
	return t.saveMeta()
}

type pathStep struct {
	n   *node
	idx int
}

func (t *Tree) insertAtLevel(e Entry, level int) error {
	var path []pathStep
	n, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	for n.level > level {
		idx, err := t.choose(n, e.Key)
		if err != nil {
			return err
		}
		path = append(path, pathStep{n, idx})
		child, err := t.readNode(n.entries[idx].Ref2())
		if err != nil {
			return err
		}
		n = child
	}
	n.entries = append(n.entries, e)
	for {
		if len(n.entries) <= t.maxEntries {
			if err := t.writeNode(n); err != nil {
				return err
			}
			return t.adjust(path, n)
		}
		left, right, err := t.split(n)
		if err != nil {
			return err
		}
		t.epoch++
		if n.id == t.root {
			return t.growRoot(left, right)
		}
		parent := path[len(path)-1].n
		idx := path[len(path)-1].idx
		path = path[:len(path)-1]
		lu, err := t.kc.Union(keysOf(left.entries))
		if err != nil {
			return err
		}
		ru, err := t.kc.Union(keysOf(right.entries))
		if err != nil {
			return err
		}
		parent.entries[idx] = Entry{Key: lu, Ref: uint64(left.id)}
		parent.entries = append(parent.entries, Entry{Key: ru, Ref: uint64(right.id)})
		n = parent
	}
}

// Ref2 returns the entry's child node id.
func (e Entry) Ref2() nodestore.NodeID { return nodestore.NodeID(e.Ref) }

// Payload returns the entry's payload.
func (e Entry) Payload() Payload { return Payload(e.Ref) }

func (t *Tree) choose(n *node, key []byte) (int, error) {
	best, bestPen := 0, 0.0
	for i, e := range n.entries {
		pen, err := t.kc.Penalty(e.Key, key)
		if err != nil {
			return 0, err
		}
		if i == 0 || pen < bestPen {
			best, bestPen = i, pen
		}
	}
	if len(n.entries) == 0 {
		return 0, fmt.Errorf("gist: internal node %d is empty", n.id)
	}
	return best, nil
}

func (t *Tree) adjust(path []pathStep, n *node) error {
	child := n
	for i := len(path) - 1; i >= 0; i-- {
		step := path[i]
		u, err := t.kc.Union(keysOf(child.entries))
		if err != nil {
			return err
		}
		step.n.entries[step.idx] = Entry{Key: u, Ref: uint64(child.id)}
		if err := t.writeNode(step.n); err != nil {
			return err
		}
		child = step.n
	}
	return nil
}

func (t *Tree) split(n *node) (*node, *node, error) {
	li, ri, err := t.kc.PickSplit(keysOf(n.entries))
	if err != nil {
		return nil, nil, err
	}
	if len(li) == 0 || len(ri) == 0 || len(li)+len(ri) != len(n.entries) {
		return nil, nil, fmt.Errorf("gist: key class %s produced an invalid split (%d/%d of %d)",
			t.kc.Name(), len(li), len(ri), len(n.entries))
	}
	le := make([]Entry, 0, len(li))
	re := make([]Entry, 0, len(ri))
	for _, ix := range li {
		le = append(le, n.entries[ix])
	}
	for _, ix := range ri {
		re = append(re, n.entries[ix])
	}
	left := &node{id: n.id, leaf: n.leaf, level: n.level, entries: le}
	rid, err := t.store.Alloc()
	if err != nil {
		return nil, nil, err
	}
	right := &node{id: rid, leaf: n.leaf, level: n.level, entries: re}
	if err := t.writeNode(left); err != nil {
		return nil, nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

func (t *Tree) growRoot(left, right *node) error {
	id, err := t.store.Alloc()
	if err != nil {
		return err
	}
	lu, err := t.kc.Union(keysOf(left.entries))
	if err != nil {
		return err
	}
	ru, err := t.kc.Union(keysOf(right.entries))
	if err != nil {
		return err
	}
	root := &node{id: id, level: left.level + 1, entries: []Entry{
		{Key: lu, Ref: uint64(left.id)},
		{Key: ru, Ref: uint64(right.id)},
	}}
	if err := t.writeNode(root); err != nil {
		return err
	}
	t.root = id
	t.height++
	return t.saveMeta()
}

// Search returns the payloads of all leaf entries consistent with the query.
func (t *Tree) Search(q Query) ([]Payload, error) {
	var out []Payload
	err := t.walkConsistent(q, func(e Entry) (bool, error) {
		out = append(out, e.Payload())
		return true, nil
	})
	return out, err
}

func (t *Tree) walkConsistent(q Query, fn func(Entry) (bool, error)) error {
	stack := []nodestore.NodeID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		for _, e := range n.entries {
			ok, err := t.kc.Consistent(e.Key, q, n.leaf)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if n.leaf {
				cont, err := fn(e)
				if err != nil {
					return err
				}
				if !cont {
					return nil
				}
			} else {
				stack = append(stack, e.Ref2())
			}
		}
	}
	return nil
}

// Delete removes the leaf entry with exactly this key and payload. Empty
// nodes are unlinked (GiST deletion without re-balancing, per the simple
// variant of [HNP95]).
func (t *Tree) Delete(key []byte, p Payload) (bool, error) {
	removed, err := t.deleteFrom(t.root, key, p)
	if err != nil || !removed {
		return removed, err
	}
	t.size--
	// Shrink an internal root with one child.
	for {
		root, err := t.readNode(t.root)
		if err != nil {
			return true, err
		}
		if root.level == 0 || len(root.entries) != 1 {
			break
		}
		old := root.id
		t.root = root.entries[0].Ref2()
		t.height--
		if err := t.store.Free(old); err != nil {
			return true, err
		}
		t.epoch++
	}
	return true, t.saveMeta()
}

func (t *Tree) deleteFrom(id nodestore.NodeID, key []byte, p Payload) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		for i, e := range n.entries {
			if e.Ref == uint64(p) && t.kc.Equal(e.Key, key) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true, t.writeNode(n)
			}
		}
		return false, nil
	}
	for i, e := range n.entries {
		// Descend only where the key could live: use an equality-ish check
		// through Consistent with the key-as-query convention (the key
		// class interprets a raw key query as containment).
		ok, err := t.kc.Consistent(e.Key, KeyQuery(key), false)
		if err != nil {
			return false, err
		}
		if !ok {
			continue
		}
		removed, err := t.deleteFrom(e.Ref2(), key, p)
		if err != nil {
			return false, err
		}
		if removed {
			child, err := t.readNode(e.Ref2())
			if err != nil {
				return false, err
			}
			if len(child.entries) == 0 {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				if err := t.store.Free(child.id); err != nil {
					return false, err
				}
				t.epoch++
			} else {
				u, err := t.kc.Union(keysOf(child.entries))
				if err != nil {
					return false, err
				}
				n.entries[i] = Entry{Key: u, Ref: e.Ref}
			}
			return true, t.writeNode(n)
		}
	}
	return false, nil
}

// KeyQuery wraps a raw leaf key as a query meaning "subtrees that could
// contain exactly this key" — every key class must handle it in Consistent.
type KeyQuery []byte

// Check validates the structural invariants: levels, fanout, and that every
// child key is consistent-reachable under its parent union.
func (t *Tree) Check() error {
	count := 0
	var walk func(id nodestore.NodeID, level int, isRoot bool) error
	walk = func(id nodestore.NodeID, level int, isRoot bool) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.level != level {
			return fmt.Errorf("gist: node %d level %d, expected %d", id, n.level, level)
		}
		if len(n.entries) > t.maxEntries {
			return fmt.Errorf("gist: node %d overfull", id)
		}
		if !isRoot && len(n.entries) == 0 {
			return fmt.Errorf("gist: node %d empty", id)
		}
		if n.leaf {
			count += len(n.entries)
			return nil
		}
		for _, e := range n.entries {
			child, err := t.readNode(e.Ref2())
			if err != nil {
				return err
			}
			for _, ce := range child.entries {
				ok, err := t.kc.Consistent(e.Key, KeyQuery(ce.Key), false)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("gist: child key escapes parent union in node %d", e.Ref2())
				}
			}
			if err := walk(e.Ref2(), level-1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height-1, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("gist: leaf count %d != size %d", count, t.size)
	}
	return nil
}
