package gist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/chronon"
	"repro/internal/temporal"
)

// GRKeyClass expresses the GR-tree as a GiST operator class: keys are
// (possibly growing) bitemporal regions with the Rectangle and Hidden
// flags, Union is the minimum-bounding-region computation of Section 3,
// Penalty is the time-parameterised area enlargement, and Consistent
// evaluates the bitemporal strategy predicates. This is the paper's
// Section 7 suggestion made concrete: the specialized index becomes an
// opclass over a generic method, trading some of the dedicated GR-tree's
// split quality (PickSplit here is a simple sort-split, not the adapted R*
// topological split) for a uniform extension interface.
type GRKeyClass struct {
	// Clock supplies the current time for resolving UC and NOW.
	Clock chronon.Clock
	// Policy tunes bounding (time parameter, hidden bounds).
	Policy temporal.BoundPolicy
}

// NewGRKeyClass returns the class with the default bounding policy.
func NewGRKeyClass(clock chronon.Clock) *GRKeyClass {
	return &GRKeyClass{Clock: clock, Policy: temporal.DefaultBoundPolicy}
}

// GR keys serialize as 4 timestamps + 1 flag byte (Rect|Hidden) = 33 bytes.
const grKeySize = 33

// GRKey encodes a region as a key.
func GRKey(r temporal.Region) []byte {
	buf := make([]byte, grKeySize)
	binary.BigEndian.PutUint64(buf[0:8], uint64(r.TTBegin))
	binary.BigEndian.PutUint64(buf[8:16], uint64(r.TTEnd))
	binary.BigEndian.PutUint64(buf[16:24], uint64(r.VTBegin))
	binary.BigEndian.PutUint64(buf[24:32], uint64(r.VTEnd))
	var fl byte
	if r.Rect {
		fl |= 1
	}
	if r.Hidden {
		fl |= 2
	}
	buf[32] = fl
	return buf
}

// GRExtentKey encodes a leaf extent as a key.
func GRExtentKey(e temporal.Extent) []byte { return GRKey(e.Region()) }

func decodeGRKey(key []byte) (temporal.Region, error) {
	if len(key) != grKeySize {
		return temporal.Region{}, fmt.Errorf("gist: GR key has %d bytes", len(key))
	}
	return temporal.Region{
		TTBegin: chronon.Instant(binary.BigEndian.Uint64(key[0:8])),
		TTEnd:   chronon.Instant(binary.BigEndian.Uint64(key[8:16])),
		VTBegin: chronon.Instant(binary.BigEndian.Uint64(key[16:24])),
		VTEnd:   chronon.Instant(binary.BigEndian.Uint64(key[24:32])),
		Rect:    key[32]&1 != 0,
		Hidden:  key[32]&2 != 0,
	}, nil
}

// GROp is a bitemporal strategy operator.
type GROp int

const (
	// GROverlaps matches regions sharing a cell with the query.
	GROverlaps GROp = iota
	// GREqual matches regions equal to the query.
	GREqual
	// GRContains matches regions containing the query.
	GRContains
	// GRContainedIn matches regions inside the query.
	GRContainedIn
)

// GRQuery is a bitemporal strategy predicate.
type GRQuery struct {
	Op GROp
	Q  temporal.Extent
}

// Name implements KeyClass.
func (*GRKeyClass) Name() string { return "grt_gist_ops" }

// MaxKeySize implements KeyClass.
func (*GRKeyClass) MaxKeySize() int { return grKeySize }

// Equal implements KeyClass.
func (*GRKeyClass) Equal(a, b []byte) bool { return bytes.Equal(a, b) }

// Consistent implements KeyClass: exact strategy tests on leaves, the
// sound internal-pruning tests on unions (Section 5.2's Internal variants).
func (c *GRKeyClass) Consistent(key []byte, q Query, leaf bool) (bool, error) {
	r, err := decodeGRKey(key)
	if err != nil {
		return false, err
	}
	ct := c.Clock.Now()
	switch t := q.(type) {
	case GRQuery:
		qr := t.Q.Region()
		if leaf {
			switch t.Op {
			case GROverlaps:
				return r.Overlaps(qr, ct), nil
			case GREqual:
				return r.Equal(qr, ct), nil
			case GRContains:
				return r.Contains(qr, ct), nil
			case GRContainedIn:
				return r.ContainedIn(qr, ct), nil
			}
			return false, fmt.Errorf("gist: bad GR operator %d", t.Op)
		}
		switch t.Op {
		case GROverlaps, GRContainedIn:
			return r.Overlaps(qr, ct), nil
		case GREqual, GRContains:
			return r.Contains(qr, ct), nil
		}
		return false, fmt.Errorf("gist: bad GR operator %d", t.Op)
	case KeyQuery:
		kr, err := decodeGRKey([]byte(t))
		if err != nil {
			return false, err
		}
		if leaf {
			return c.Equal(key, []byte(t)), nil
		}
		return r.Contains(kr, ct), nil
	}
	return false, fmt.Errorf("gist: grt_gist_ops cannot evaluate %T", q)
}

// Union implements KeyClass via the Section 3 minimum-bounding-region
// computation (stairs, growing rectangles, hidden bounds and all).
func (c *GRKeyClass) Union(keys [][]byte) ([]byte, error) {
	regs := make([]temporal.Region, len(keys))
	for i, k := range keys {
		r, err := decodeGRKey(k)
		if err != nil {
			return nil, err
		}
		regs[i] = r
	}
	return GRKey(temporal.Bound(regs, c.Clock.Now(), c.Policy)), nil
}

// Penalty implements KeyClass: time-parameterised area enlargement.
func (c *GRKeyClass) Penalty(existing, newKey []byte) (float64, error) {
	er, err := decodeGRKey(existing)
	if err != nil {
		return 0, err
	}
	nr, err := decodeGRKey(newKey)
	if err != nil {
		return 0, err
	}
	d, _ := er.Enlargement(nr, c.Clock.Now(), c.Policy)
	return d, nil
}

// PickSplit implements KeyClass: sort by resolved transaction-time begin at
// the horizon and split in half — deliberately simpler than the dedicated
// GR-tree's adapted R* split, which is the quality gap the paper's
// Section 7 trade-off predicts.
func (c *GRKeyClass) PickSplit(keys [][]byte) ([]int, []int, error) {
	ct := c.Clock.Now()
	horizon := ct + chronon.Instant(c.Policy.TimeParam)
	type item struct {
		idx int
		k   int64
	}
	items := make([]item, len(keys))
	for i, k := range keys {
		r, err := decodeGRKey(k)
		if err != nil {
			return nil, nil, err
		}
		sh := r.Resolve(horizon)
		items[i] = item{i, sh.TTBegin + sh.VTBegin}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].k < items[b].k })
	mid := len(items) / 2
	left := make([]int, 0, mid)
	right := make([]int, 0, len(items)-mid)
	for i, it := range items {
		if i < mid {
			left = append(left, it.idx)
		} else {
			right = append(right, it.idx)
		}
	}
	return left, right, nil
}
