package gist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// IntervalClass is a one-dimensional closed-interval key class — the
// smallest non-trivial GiST opclass, and the regression baseline for the
// generic machinery.
type IntervalClass struct{}

// IntervalKey encodes a closed interval [Lo, Hi].
func IntervalKey(lo, hi int64) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf[0:8], uint64(lo))
	binary.BigEndian.PutUint64(buf[8:16], uint64(hi))
	return buf
}

func decodeInterval(key []byte) (lo, hi int64, err error) {
	if len(key) != 16 {
		return 0, 0, fmt.Errorf("gist: interval key has %d bytes", len(key))
	}
	return int64(binary.BigEndian.Uint64(key[0:8])), int64(binary.BigEndian.Uint64(key[8:16])), nil
}

// IntervalOverlaps is the overlap query.
type IntervalOverlaps struct{ Lo, Hi int64 }

// IntervalContains finds intervals containing the query interval.
type IntervalContains struct{ Lo, Hi int64 }

// Name implements KeyClass.
func (IntervalClass) Name() string { return "interval_ops" }

// MaxKeySize implements KeyClass.
func (IntervalClass) MaxKeySize() int { return 16 }

// Equal implements KeyClass.
func (IntervalClass) Equal(a, b []byte) bool { return bytes.Equal(a, b) }

// Consistent implements KeyClass.
func (IntervalClass) Consistent(key []byte, q Query, leaf bool) (bool, error) {
	lo, hi, err := decodeInterval(key)
	if err != nil {
		return false, err
	}
	switch t := q.(type) {
	case IntervalOverlaps:
		return lo <= t.Hi && t.Lo <= hi, nil
	case IntervalContains:
		// A leaf containing [qlo,qhi] must itself contain it; a subtree
		// union containing such a leaf also contains it.
		return lo <= t.Lo && t.Hi <= hi, nil
	case KeyQuery:
		klo, khi, err := decodeInterval([]byte(t))
		if err != nil {
			return false, err
		}
		return lo <= klo && khi <= hi, nil
	}
	return false, fmt.Errorf("gist: interval_ops cannot evaluate %T", q)
}

// Union implements KeyClass.
func (IntervalClass) Union(keys [][]byte) ([]byte, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("gist: union of no keys")
	}
	lo, hi, err := decodeInterval(keys[0])
	if err != nil {
		return nil, err
	}
	for _, k := range keys[1:] {
		l, h, err := decodeInterval(k)
		if err != nil {
			return nil, err
		}
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	return IntervalKey(lo, hi), nil
}

// Penalty implements KeyClass: length enlargement.
func (IntervalClass) Penalty(existing, newKey []byte) (float64, error) {
	lo, hi, err := decodeInterval(existing)
	if err != nil {
		return 0, err
	}
	nlo, nhi, err := decodeInterval(newKey)
	if err != nil {
		return 0, err
	}
	ulo, uhi := lo, hi
	if nlo < ulo {
		ulo = nlo
	}
	if nhi > uhi {
		uhi = nhi
	}
	return float64(uhi-ulo) - float64(hi-lo), nil
}

// PickSplit implements KeyClass: sort by lower bound, split in half.
func (IntervalClass) PickSplit(keys [][]byte) ([]int, []int, error) {
	idx := make([]int, len(keys))
	los := make([]int64, len(keys))
	for i, k := range keys {
		lo, _, err := decodeInterval(k)
		if err != nil {
			return nil, nil, err
		}
		idx[i] = i
		los[i] = lo
	}
	sort.SliceStable(idx, func(a, b int) bool { return los[idx[a]] < los[idx[b]] })
	mid := len(idx) / 2
	return idx[:mid], idx[mid:], nil
}
