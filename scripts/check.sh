#!/bin/sh
# Static checks plus the race-sensitive packages under the race detector:
# the sharded buffer pool, the version-chained heap and its page latches,
# the lock manager's deadlock detection, the purpose-function framework,
# the batched scan pipeline, the WAL group-commit flusher, the network
# stack (wire framing, the session-multiplexing server, the client
# library), the online index build (side-log capture, the tree blades'
# STR bulk loaders, and the concurrent-DML/crash battery), the shared
# plan cache (LRU + generation invalidation under concurrent DDL), and the
# aggregate-pushdown/vacuum batteries (am_aggregate agreement under
# concurrent DML with interleaved VacuumNow, deferred index maintenance).
# Tier-1
# (`go build ./... && go test ./...`) is assumed to run separately; this
# is the concurrency-focused gate (`make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race (storage, heap, lock, wal, am, engine, grtree, rstar, blades, wire, server, client, plancache)"
go test -race ./internal/storage/... ./internal/heap/... ./internal/lock/... ./internal/wal/... ./internal/am/... ./internal/engine/... ./internal/grtree/... ./internal/rstar/... ./internal/blades/... ./internal/wire/... ./internal/server/... ./internal/client/... ./internal/plancache/...

echo "ok"
