#!/bin/sh
# Static checks plus the race-sensitive packages under the race detector:
# the sharded buffer pool, the version-chained heap and its page latches,
# the lock manager's deadlock detection, the purpose-function framework,
# the batched scan pipeline, the WAL group-commit flusher, and the network
# stack (wire framing, the session-multiplexing server, the client
# library). Tier-1 (`go build ./... && go test ./...`) is assumed to run
# separately; this is the concurrency-focused gate (`make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race (storage, heap, lock, wal, am, engine, wire, server, client)"
go test -race ./internal/storage/... ./internal/heap/... ./internal/lock/... ./internal/wal/... ./internal/am/... ./internal/engine/... ./internal/wire/... ./internal/server/... ./internal/client/...

echo "ok"
