// Package repro's root-level benchmarks: one testing.B benchmark per
// experiment family of DESIGN.md. The benchrunner binary prints the
// paper-style tables (rows/series); these benchmarks measure the same code
// paths under the Go benchmark harness and report logical node I/O per
// operation alongside wall time.
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/grtree"
	"repro/internal/nodestore"
	"repro/internal/rstar"
	"repro/internal/temporal"
)

// benchWorkload builds (once per configuration) a replayed workload.
func benchWorkload(b *testing.B, nowFrac float64) *experiments.Workload {
	b.Helper()
	cfg := experiments.DefaultWorkload()
	cfg.Tuples = 2000
	cfg.Days = 200
	cfg.NowFrac = nowFrac
	return experiments.Generate(cfg)
}

// BenchmarkP1Search measures search I/O and latency per timeslice query for
// the GR-tree and the two R*-tree substitutes on half-now-relative data
// (experiment P1; benchrunner sweeps the now-relative fraction).
func BenchmarkP1Search(b *testing.B) {
	wl := benchWorkload(b, 0.5)
	mk := map[string]func() (experiments.Index, error){
		"GR-tree": func() (experiments.Index, error) {
			return experiments.NewGRTIndex(grtree.DefaultConfig())
		},
		"RStar-MX": func() (experiments.Index, error) {
			return experiments.NewRSTIndex(rstar.DefaultConfig(), experiments.SubMax, chronon.FromDate(9999, 12, 31))
		},
		"RStar-CT": func() (experiments.Index, error) {
			return experiments.NewRSTIndex(rstar.DefaultConfig(), experiments.SubAsOf, chronon.FromDate(9999, 12, 31))
		},
	}
	for name, factory := range mk {
		b.Run(name, func(b *testing.B) {
			idx, err := factory()
			if err != nil {
				b.Fatal(err)
			}
			if err := experiments.Replay(wl, idx); err != nil {
				b.Fatal(err)
			}
			idx.ResetReads()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := wl.Queries[i%len(wl.Queries)]
				if _, err := idx.SearchCount(q, wl.EndCT); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(idx.NodeReads())/float64(b.N), "nodeReads/op")
		})
	}
}

// BenchmarkP2Insert measures insertion cost into the two structures
// (the build side of experiment P2's structural comparison).
func BenchmarkP2Insert(b *testing.B) {
	wl := benchWorkload(b, 0.5)
	b.Run("GR-tree", func(b *testing.B) {
		idx, err := experiments.NewGRTIndex(grtree.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		events := wl.Events
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := events[i%len(events)]
			if !ev.Insert {
				continue
			}
			// Payload uniqueness across laps keeps deletes out of play.
			if err := idx.Insert(ev.Extent, uint64(i)<<20|ev.Payload, ev.Day); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RStar-MX", func(b *testing.B) {
		idx, err := experiments.NewRSTIndex(rstar.DefaultConfig(), experiments.SubMax, chronon.FromDate(9999, 12, 31))
		if err != nil {
			b.Fatal(err)
		}
		events := wl.Events
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := events[i%len(events)]
			if !ev.Insert {
				continue
			}
			if err := idx.Insert(ev.Extent, uint64(i)<<20|ev.Payload, ev.Day); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP3Placement measures a search under the three sbspace placements
// of Section 5.3 (experiment P3); the LO open counts appear in benchrunner.
func BenchmarkP3Placement(b *testing.B) {
	wl := benchWorkload(b, 0.5)
	for _, pl := range []struct {
		name string
		p    nodestore.Placement
	}{
		{"single", nodestore.SingleLO},
		{"subtree16", nodestore.PerSubtreeLO(16)},
		{"pernode", nodestore.PerNodeLO},
	} {
		b.Run(pl.name, func(b *testing.B) {
			idx, store, err := experiments.NewPlacedGRTIndex(pl.p)
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			for _, ev := range wl.Events {
				if !ev.Insert {
					continue
				}
				if err := idx.Insert(ev.Extent, grtree.Payload(ev.Payload), ev.Day); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := wl.Queries[i%len(wl.Queries)]
				if _, err := idx.SearchAll(grtree.Predicate{Op: grtree.OpOverlaps, Query: q}, wl.EndCT); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP4Delete measures predicate deletion under the Section 5.5
// policies (experiment P4).
func BenchmarkP4Delete(b *testing.B) {
	for _, pol := range []grtree.DeletePolicy{grtree.RestartOnCondense, grtree.RestartAlways, grtree.NoCondense} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := experiments.DefaultWorkload()
			cfg.Tuples = 1000
			cfg.Days = 100
			wl := experiments.Generate(cfg)
			tcfg := grtree.DefaultConfig()
			tcfg.DeletePolicy = pol
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				idx, err := experiments.NewGRTIndex(tcfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := experiments.Replay(wl, idx); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				everything := temporal.Extent{
					TTBegin: cfg.Start - 400, TTEnd: chronon.UC,
					VTBegin: cfg.Start - 400, VTEnd: chronon.NOW,
				}
				if _, _, err := idx.Tree.DeleteWhere(grtree.Predicate{Op: grtree.OpOverlaps, Query: everything}, wl.EndCT); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP5Dispatch measures a full SQL query under hard-coded vs dynamic
// strategy-function dispatch (experiment P5, Section 5.2).
func BenchmarkP5Dispatch(b *testing.B) {
	for _, mode := range []string{"hardcoded", "dynamic"} {
		b.Run(mode, func(b *testing.B) {
			clock := chronon.NewVirtualClock(chronon.MustParse("1/97"))
			e, err := engine.Open(engine.Options{Clock: clock, NoWAL: true})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if err := grtblade.Register(e); err != nil {
				b.Fatal(err)
			}
			s := e.NewSession()
			defer s.Close()
			if _, err := s.ExecScript(`CREATE SBSPACE spc; CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Exec(fmt.Sprintf(`CREATE INDEX ix ON T(X) USING grtree_am (dispatch='%s') IN spc`, mode)); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 800; i++ {
				clock.Advance(1)
				day := clock.Now()
				if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s, UC, %s, NOW')`,
					i, day.String(), (day - 30).String())); err != nil {
					b.Fatal(err)
				}
			}
			q := fmt.Sprintf(`SELECT COUNT(*) FROM T WHERE Overlaps(X, '%s, UC, %s, NOW')`,
				clock.Now().String(), (clock.Now() - 10).String())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBulkLoad compares sort-tile-recursive packing against one-at-a-
// time insertion (Section 5.5's vacuuming rebuild).
func BenchmarkBulkLoad(b *testing.B) {
	cfg := experiments.DefaultWorkload()
	cfg.Tuples = 2000
	cfg.Days = 200
	wl := experiments.Generate(cfg)
	var items []grtree.BulkItem
	for p, e := range wl.Final {
		items = append(items, grtree.BulkItem{Extent: e, Payload: grtree.Payload(p)})
	}
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := grtree.Create(nodestore.NewMem(), grtree.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := tr.BulkLoad(items, wl.EndCT); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := grtree.Create(nodestore.NewMem(), grtree.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			for _, it := range items {
				if err := tr.Insert(it.Extent, it.Payload, wl.EndCT); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkScanBatchSize sweeps the engine's scan batch capacity over a
// query-heavy workload, for the heap sequential scan and the grtree_am
// am_getmulti path (batch=1 is the row-at-a-time ablation).
func BenchmarkScanBatchSize(b *testing.B) {
	for _, mode := range []string{"seqscan", "index"} {
		for _, bs := range []int{1, 16, 64, 256} {
			b.Run(fmt.Sprintf("%s/batch=%d", mode, bs), func(b *testing.B) {
				clock := chronon.NewVirtualClock(chronon.MustParse("1/97"))
				e, err := engine.Open(engine.Options{Clock: clock, NoWAL: true, ScanBatchSize: bs})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				if err := grtblade.Register(e); err != nil {
					b.Fatal(err)
				}
				s := e.NewSession()
				defer s.Close()
				if _, err := s.ExecScript(`CREATE SBSPACE spc;
					CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`); err != nil {
					b.Fatal(err)
				}
				if mode == "index" {
					if _, err := s.Exec(`CREATE INDEX ix ON T(X) USING grtree_am IN spc`); err != nil {
						b.Fatal(err)
					}
				}
				for i := 0; i < 2000; i++ {
					clock.Advance(1)
					day := clock.Now()
					if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s, UC, %s, NOW')`,
						i, day.String(), (day - 30).String())); err != nil {
						b.Fatal(err)
					}
				}
				// A wide timeslice: most rows qualify, so the scan cost is
				// dominated by row delivery — what the batching amortises.
				day := clock.Now()
				q := fmt.Sprintf(`SELECT COUNT(*) FROM T WHERE Overlaps(X, '%s, UC, %s, NOW')`,
					day.String(), (day - 10).String())
				var fills, fetches uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := s.Exec(q)
					if err != nil {
						b.Fatal(err)
					}
					// Per-statement profile from the redesigned Result API —
					// no more reaching into raw BufferPool.Stats.
					fills += res.Stats.Calls("am_getmulti") + res.Stats.Calls("am_getnext")
					fetches += res.Stats.Counter("bufferpool.fetches")
				}
				b.ReportMetric(float64(fills)/float64(b.N), "amFills/op")
				b.ReportMetric(float64(fetches)/float64(b.N), "pageFetches/op")
			})
		}
	}
}

// BenchmarkEngineSQL measures end-to-end SQL statement throughput through
// the whole stack (parser, planner, purpose functions, heap, WAL).
func BenchmarkEngineSQL(b *testing.B) {
	clock := chronon.NewVirtualClock(chronon.MustParse("1/97"))
	e, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		b.Fatal(err)
	}
	s := e.NewSession()
	defer s.Close()
	if _, err := s.ExecScript(`CREATE SBSPACE spc;
		CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t);
		CREATE INDEX ix ON T(X) USING grtree_am IN spc`); err != nil {
		b.Fatal(err)
	}
	b.Run("insert", func(b *testing.B) {
		var walAppends uint64
		for i := 0; i < b.N; i++ {
			clock.Advance(1)
			day := clock.Now()
			res, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s, UC, %s, NOW')`,
				i, day.String(), (day - 10).String()))
			if err != nil {
				b.Fatal(err)
			}
			walAppends += res.Stats.Counter("wal.appends")
		}
		b.ReportMetric(float64(walAppends)/float64(b.N), "walAppends/op")
	})
	b.Run("select", func(b *testing.B) {
		day := clock.Now()
		q := fmt.Sprintf(`SELECT COUNT(*) FROM T WHERE Overlaps(X, '%s, %s, %s, %s')`,
			day-5, day-1, day-5, day-1)
		var scanned uint64
		for i := 0; i < b.N; i++ {
			res, err := s.Exec(q)
			if err != nil {
				b.Fatal(err)
			}
			scanned += res.Stats.RowsScanned
		}
		b.ReportMetric(float64(scanned)/float64(b.N), "rowsScanned/op")
	})
}

// BenchmarkCommit sweeps the commit-path configuration space — writers ×
// {SYNC, GROUP, ASYNC} — through the full engine against an on-disk WAL
// (experiment P9). Each writer auto-commits single-row inserts into its own
// table. SYNC pays one private fsync per commit; GROUP parks concurrent
// committers on the flusher so one fsync covers the group (fsyncs/commit
// drops below 1); ASYNC returns at append time (bounded loss). Coalescing
// is an I/O-wait effect, so the GROUP win survives a single-CPU host.
func BenchmarkCommit(b *testing.B) {
	for _, mode := range []string{"SYNC", "GROUP", "ASYNC"} {
		for _, writers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/writers=%d", mode, writers), func(b *testing.B) {
				clock := chronon.NewVirtualClock(chronon.MustParse("1/97"))
				e, err := engine.Open(engine.Options{Dir: b.TempDir(), Clock: clock})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				setup := e.NewSession()
				for i := 0; i < writers; i++ {
					if _, err := setup.Exec(fmt.Sprintf(`CREATE TABLE c%d (a INTEGER)`, i)); err != nil {
						b.Fatal(err)
					}
				}
				setup.Close()
				sessions := make([]*engine.Session, writers)
				for i := range sessions {
					sessions[i] = e.NewSession()
					defer sessions[i].Close()
					if _, err := sessions[i].Exec("SET COMMIT " + mode); err != nil {
						b.Fatal(err)
					}
				}
				flushes := e.Obs().Counter("wal.flushes")
				per := b.N/writers + 1
				total := per * writers
				flushes0 := flushes.Load()
				var wg sync.WaitGroup
				errs := make([]error, writers)
				b.ResetTimer()
				for i := range sessions {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						for n := 0; n < per; n++ {
							if _, err := sessions[i].Exec(fmt.Sprintf(`INSERT INTO c%d VALUES (%d)`, i, n)); err != nil {
								errs[i] = err
								return
							}
						}
					}(i)
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(flushes.Load()-flushes0)/float64(total), "fsyncs/commit")
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "commits/s")
			})
		}
	}
}
